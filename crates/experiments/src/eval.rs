//! Evaluation of the six uncertainty-estimation approaches of Table I on
//! the test windows.
//!
//! The replay runs on the multi-stream [`TauwEngine`]: every test window is
//! a stream, and each wave of the window advances all streams through one
//! batched [`TauwEngine::step_many`] call — the same inference path a
//! production deployment would use. Every per-step estimate routes through
//! the compiled [`tauw_dtree::FlatTree`] serving form (one SoA traversal
//! plus a leaf-ID bound lookup per model). Results are bit-identical to
//! replaying each series through its own [`tauw_core::tauw::TauwSession`],
//! and — by the determinism suite — to the pointer-tree reference path.

use tauw_core::engine::TauwEngine;
use tauw_core::tauw::TimeseriesAwareWrapper;
use tauw_core::training::TrainingSeries;
use tauw_core::CoreError;
use tauw_fusion::uncertainty::UncertaintyFusion;
use tauw_stats::brier::{BrierDecomposition, Grouping};
use tauw_stats::calibration::CalibrationCurve;
use tauw_stats::StatsError;

/// The six approaches compared in the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// Stateless UW on isolated predictions (no IF, no UF).
    StatelessNoIf,
    /// Fused predictions, uncertainty from the stateless UW of the current
    /// step (IF + no UF).
    IfNoUf,
    /// Fused predictions + naïve product fusion of uncertainties.
    IfNaive,
    /// Fused predictions + worst-case (max) fusion.
    IfWorstCase,
    /// Fused predictions + opportune (min) fusion.
    IfOpportune,
    /// Fused predictions + the timeseries-aware uncertainty wrapper.
    IfTauw,
}

impl Approach {
    /// All six, in the paper's row order.
    pub const ALL: [Approach; 6] = [
        Approach::StatelessNoIf,
        Approach::IfNoUf,
        Approach::IfNaive,
        Approach::IfWorstCase,
        Approach::IfOpportune,
        Approach::IfTauw,
    ];

    /// Row label matching Table I.
    pub fn paper_label(self) -> &'static str {
        match self {
            Approach::StatelessNoIf => "Stateless UW (no IF + no UF)",
            Approach::IfNoUf => "(Fused) IF + no UF",
            Approach::IfNaive => "IF + Naive UF",
            Approach::IfWorstCase => "IF + Worst-case UF",
            Approach::IfOpportune => "IF + Opportune UF",
            Approach::IfTauw => "IF + taUW",
        }
    }

    /// Whether the approach scores the *fused* outcome (everything except
    /// the stateless baseline).
    pub fn scores_fused_outcome(self) -> bool {
        !matches!(self, Approach::StatelessNoIf)
    }

    /// Grouping used for the Murphy decomposition: tree-backed approaches
    /// emit finitely many distinct bounds (exact grouping); the naïve
    /// product is continuous and needs binning.
    pub fn grouping(self) -> Grouping {
        match self {
            Approach::IfNaive => Grouping::QuantileBins(100),
            _ => Grouping::UniqueValues { tolerance: 1e-9 },
        }
    }
}

impl std::fmt::Display for Approach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.paper_label())
    }
}

/// Per-(series, step) evaluation record with every approach's uncertainty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseRecord {
    /// Step within the window (0-based).
    pub step: usize,
    /// Whether the isolated DDM outcome at this step was wrong.
    pub isolated_failed: bool,
    /// Whether the fused outcome after this step was wrong.
    pub fused_failed: bool,
    /// Stateless UW uncertainty of the current step.
    pub u_stateless: f64,
    /// Naïve product over the window so far.
    pub u_naive: f64,
    /// Worst-case (max) over the window so far.
    pub u_worst: f64,
    /// Opportune (min) over the window so far.
    pub u_opportune: f64,
    /// taUW uncertainty for the fused outcome.
    pub u_tauw: f64,
}

impl CaseRecord {
    /// The forecast failure probability of one approach for this case.
    pub fn uncertainty(&self, approach: Approach) -> f64 {
        match approach {
            Approach::StatelessNoIf | Approach::IfNoUf => self.u_stateless,
            Approach::IfNaive => self.u_naive,
            Approach::IfWorstCase => self.u_worst,
            Approach::IfOpportune => self.u_opportune,
            Approach::IfTauw => self.u_tauw,
        }
    }

    /// The realized failure event the approach is scored against.
    pub fn failed(&self, approach: Approach) -> bool {
        if approach.scores_fused_outcome() {
            self.fused_failed
        } else {
            self.isolated_failed
        }
    }
}

/// Misclassification rates at one window step (Fig. 4 rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRates {
    /// Window step (1-based, like the paper's x-axis).
    pub timestep: usize,
    /// Misclassification rate of isolated predictions at this step.
    pub isolated: f64,
    /// Misclassification rate of fused predictions at this step.
    pub fused: f64,
    /// Cases at this step.
    pub n: usize,
}

/// All evaluation records for a test set.
#[derive(Debug, Clone, PartialEq)]
pub struct TestEvaluation {
    /// One record per (series, step).
    pub cases: Vec<CaseRecord>,
    /// Window length of the test series.
    pub window_len: usize,
}

/// Replays the test series through the trained wrapper and collects every
/// approach's uncertainty per case.
///
/// Every series becomes one engine stream; step `j` of all series is
/// submitted as one batched [`TauwEngine::step_many`] wave. The engine
/// guarantees stream independence, so the records are bit-identical to the
/// sequential one-session-per-series replay, in the same (series, step)
/// order.
///
/// # Errors
///
/// Returns [`CoreError`] on feature-arity mismatch.
pub fn evaluate(
    tauw: &TimeseriesAwareWrapper,
    test: &[TrainingSeries],
) -> Result<TestEvaluation, CoreError> {
    let window_len = test.iter().map(TrainingSeries::len).max().unwrap_or(0);
    let waves = TauwEngine::new(tauw.clone()).step_series_waves(test)?;
    let mut cases = Vec::with_capacity(test.iter().map(TrainingSeries::len).sum());
    let mut step_uncertainties: Vec<f64> = Vec::with_capacity(window_len);
    for (series, outs) in test.iter().zip(&waves) {
        step_uncertainties.clear();
        for (j, out) in outs.iter().enumerate() {
            step_uncertainties.push(out.stateless_uncertainty);
            let u_naive = UncertaintyFusion::Naive
                .fuse(&step_uncertainties)
                .expect("non-empty uncertainties");
            let u_worst = UncertaintyFusion::WorstCase
                .fuse(&step_uncertainties)
                .expect("non-empty uncertainties");
            let u_opportune = UncertaintyFusion::Opportune
                .fuse(&step_uncertainties)
                .expect("non-empty uncertainties");
            cases.push(CaseRecord {
                step: j,
                isolated_failed: series.is_failure(j),
                fused_failed: out.fused_outcome != series.true_outcome,
                u_stateless: out.stateless_uncertainty,
                u_naive,
                u_worst,
                u_opportune,
                u_tauw: out.uncertainty,
            });
        }
    }
    Ok(TestEvaluation { cases, window_len })
}

impl TestEvaluation {
    /// `(forecasts, failures)` slices for one approach.
    pub fn forecasts(&self, approach: Approach) -> (Vec<f64>, Vec<bool>) {
        let forecasts = self.cases.iter().map(|c| c.uncertainty(approach)).collect();
        let failures = self.cases.iter().map(|c| c.failed(approach)).collect();
        (forecasts, failures)
    }

    /// Brier decomposition for one approach (Table I row).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] only for empty evaluations.
    pub fn decomposition(&self, approach: Approach) -> Result<BrierDecomposition, StatsError> {
        let (forecasts, failures) = self.forecasts(approach);
        BrierDecomposition::compute(&forecasts, &failures, approach.grouping())
    }

    /// Calibration curve over quantile bins for one approach (Fig. 6).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] only for empty evaluations.
    pub fn calibration_curve(
        &self,
        approach: Approach,
        bins: usize,
    ) -> Result<CalibrationCurve, StatsError> {
        let (forecasts, failures) = self.forecasts(approach);
        CalibrationCurve::from_uncertainties(&forecasts, &failures, bins)
    }

    /// Misclassification per window step, isolated vs fused (Fig. 4).
    pub fn misclassification_by_step(&self) -> Vec<StepRates> {
        let mut rates = Vec::new();
        for step in 0..self.window_len {
            let at_step: Vec<&CaseRecord> = self.cases.iter().filter(|c| c.step == step).collect();
            if at_step.is_empty() {
                continue;
            }
            let n = at_step.len();
            let isolated = at_step.iter().filter(|c| c.isolated_failed).count() as f64 / n as f64;
            let fused = at_step.iter().filter(|c| c.fused_failed).count() as f64 / n as f64;
            rates.push(StepRates {
                timestep: step + 1,
                isolated,
                fused,
                n,
            });
        }
        rates
    }

    /// Mean isolated misclassification over all cases (paper: 7.89%).
    pub fn isolated_misclassification(&self) -> f64 {
        self.cases.iter().filter(|c| c.isolated_failed).count() as f64
            / self.cases.len().max(1) as f64
    }

    /// Mean fused misclassification over all cases (paper: 5.57%).
    pub fn fused_misclassification(&self) -> f64 {
        self.cases.iter().filter(|c| c.fused_failed).count() as f64 / self.cases.len().max(1) as f64
    }

    /// `(lowest uncertainty, fraction of cases at it)` for an approach —
    /// Fig. 5's headline ("u = 0.0072 can be guaranteed for 65.9% of the
    /// cases").
    pub fn lowest_uncertainty_share(&self, approach: Approach) -> (f64, f64) {
        let mut min_u = f64::INFINITY;
        for c in &self.cases {
            min_u = min_u.min(c.uncertainty(approach));
        }
        if !min_u.is_finite() {
            return (0.0, 0.0);
        }
        let at_min = self
            .cases
            .iter()
            .filter(|c| c.uncertainty(approach) <= min_u + 1e-12)
            .count();
        (min_u, at_min as f64 / self.cases.len().max(1) as f64)
    }

    /// All uncertainties of one approach (for histograms).
    pub fn uncertainties(&self, approach: Approach) -> Vec<f64> {
        self.cases.iter().map(|c| c.uncertainty(approach)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ExperimentContext;

    fn small_eval() -> (ExperimentContext, TestEvaluation) {
        let ctx = ExperimentContext::build(0.02, 11).unwrap();
        let eval = evaluate(&ctx.tauw, &ctx.test).unwrap();
        (ctx, eval)
    }

    #[test]
    fn one_case_per_series_step() {
        let (ctx, eval) = small_eval();
        let expected: usize = ctx.test.iter().map(TrainingSeries::len).sum();
        assert_eq!(eval.cases.len(), expected);
        assert_eq!(eval.window_len, 10);
    }

    #[test]
    fn fusion_beats_isolated_on_average() {
        // The fusion advantage is an *average* claim; at 2% scale (~80 test
        // windows) sampling noise can flip it, so this test runs on a
        // larger slice of the world than the structural tests above.
        let ctx = ExperimentContext::build(0.08, 11).unwrap();
        let eval = evaluate(&ctx.tauw, &ctx.test).unwrap();
        assert!(
            eval.fused_misclassification() <= eval.isolated_misclassification(),
            "fused {} vs isolated {}",
            eval.fused_misclassification(),
            eval.isolated_misclassification()
        );
    }

    #[test]
    fn step_one_rates_coincide() {
        // With a single outcome, fused == isolated (paper: "during the
        // first two steps, DDM+IF and isolated DDM prediction outcomes
        // coincide").
        let (_, eval) = small_eval();
        let rates = eval.misclassification_by_step();
        assert_eq!(rates[0].timestep, 1);
        assert!((rates[0].isolated - rates[0].fused).abs() < 1e-12);
    }

    #[test]
    fn uncertainty_orderings_hold_per_case() {
        let (_, eval) = small_eval();
        for c in &eval.cases {
            assert!(c.u_naive <= c.u_opportune + 1e-12);
            assert!(c.u_opportune <= c.u_worst + 1e-12);
            assert!(c.u_opportune <= c.u_stateless + 1e-12);
            assert!(c.u_stateless <= c.u_worst + 1e-12);
            for a in Approach::ALL {
                let u = c.uncertainty(a);
                assert!((0.0..=1.0).contains(&u));
            }
        }
    }

    #[test]
    fn decompositions_compute_for_all_approaches() {
        let (_, eval) = small_eval();
        for a in Approach::ALL {
            let d = eval.decomposition(a).unwrap();
            assert!(d.brier >= 0.0 && d.brier <= 1.0, "{a}: brier {}", d.brier);
            assert!(d.variance >= 0.0);
            // Variance is shared by all fused approaches.
        }
        let d_if = eval.decomposition(Approach::IfNoUf).unwrap();
        let d_ta = eval.decomposition(Approach::IfTauw).unwrap();
        assert!((d_if.variance - d_ta.variance).abs() < 1e-12);
    }

    #[test]
    fn lowest_uncertainty_share_is_consistent() {
        let (_, eval) = small_eval();
        let (min_u, share) = eval.lowest_uncertainty_share(Approach::IfTauw);
        assert!(min_u > 0.0 && min_u < 1.0);
        assert!(share > 0.0 && share <= 1.0);
        let us = eval.uncertainties(Approach::IfTauw);
        let manual_min = us.iter().copied().fold(f64::INFINITY, f64::min);
        assert_eq!(min_u, manual_min);
    }

    #[test]
    fn engine_replay_matches_sequential_sessions_bitwise() {
        // The batched multi-stream replay must be indistinguishable from
        // one dedicated session per series.
        let (ctx, eval) = small_eval();
        let mut session = ctx.tauw.new_session();
        let mut idx = 0usize;
        for series in &ctx.test {
            session.begin_series();
            for step in &series.steps {
                let out = session.step(&step.quality_factors, step.outcome).unwrap();
                let case = &eval.cases[idx];
                assert_eq!(case.u_tauw.to_bits(), out.uncertainty.to_bits());
                assert_eq!(
                    case.u_stateless.to_bits(),
                    out.stateless_uncertainty.to_bits()
                );
                assert_eq!(case.fused_failed, out.fused_outcome != series.true_outcome);
                idx += 1;
            }
        }
        assert_eq!(idx, eval.cases.len());
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Approach::IfTauw.paper_label(), "IF + taUW");
        assert_eq!(Approach::ALL.len(), 6);
        assert!(!Approach::StatelessNoIf.scores_fused_outcome());
        assert!(Approach::IfNaive.scores_fused_outcome());
    }
}
