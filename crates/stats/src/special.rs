//! Special functions needed by the confidence-bound machinery.
//!
//! Implemented from first principles (Lanczos approximation, Lentz's
//! continued fractions, Acklam's normal-quantile rational approximation with
//! a Newton polish step). Accuracy targets are ~1e-12 relative error in the
//! parameter ranges exercised by [`crate::binomial`], which is far below the
//! statistical noise of any experiment in this repository.

use crate::error::StatsError;

/// Lanczos coefficients for `g = 7`, `n = 9` (Godfrey's values).
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
///
/// Panics if `x <= 0` and `x` is an exact non-positive integer (poles of Γ).
///
/// # Examples
///
/// ```
/// let lg = tauw_stats::special::ln_gamma(5.0);
/// assert!((lg - 24f64.ln()).abs() < 1e-12); // Γ(5) = 4! = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1−x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        assert!(sin_pi_x != 0.0, "ln_gamma called at a pole (x = {x})");
        std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS[0];
        for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// Natural logarithm of the beta function `ln B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Continued-fraction kernel for the regularized incomplete beta function
/// (modified Lentz's method, cf. Numerical Recipes `betacf`).
fn betacf(a: f64, b: f64, x: f64) -> Result<f64, StatsError> {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            return Ok(h);
        }
    }
    Err(StatsError::NoConvergence { routine: "betacf" })
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]`.
///
/// `I_x(a, b)` is the CDF of the Beta(a, b) distribution evaluated at `x`.
///
/// # Errors
///
/// Returns [`StatsError`] if `a` or `b` is non-positive, `x` is outside
/// `[0, 1]`, or the continued fraction fails to converge (never observed for
/// valid inputs).
///
/// # Examples
///
/// ```
/// // Beta(1, 1) is uniform, so I_x(1, 1) = x.
/// let v = tauw_stats::special::reg_inc_beta(1.0, 1.0, 0.3).unwrap();
/// assert!((v - 0.3).abs() < 1e-14);
/// ```
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> Result<f64, StatsError> {
    // `>=` with negation also rejects NaN parameters.
    if a.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || b.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Err(StatsError::InvalidArgument {
            reason: "beta parameters must be positive",
        });
    }
    if !(0.0..=1.0).contains(&x) {
        return Err(StatsError::InvalidProbability {
            name: "x",
            value: x,
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x == 1.0 {
        return Ok(1.0);
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        Ok(front * betacf(a, b, x)? / a)
    } else {
        Ok(1.0 - front * betacf(b, a, 1.0 - x)? / b)
    }
}

/// Quantile (inverse CDF) of the Beta(a, b) distribution.
///
/// Solves `I_x(a, b) = p` for `x` by bisection followed by Newton polishing;
/// robust over the full parameter range used by Clopper–Pearson bounds.
///
/// # Errors
///
/// Returns [`StatsError`] on invalid parameters or if the solver stalls.
pub fn beta_quantile(p: f64, a: f64, b: f64) -> Result<f64, StatsError> {
    crate::error::check_probability("p", p)?;
    // `>=` with negation also rejects NaN parameters.
    if a.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
        || b.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
    {
        return Err(StatsError::InvalidArgument {
            reason: "beta parameters must be positive",
        });
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(1.0);
    }
    // Bisection: I_x is monotonically increasing in x.
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut x = a / (a + b); // mean as the starting guess
    for _ in 0..200 {
        let v = reg_inc_beta(a, b, x)?;
        if v < p {
            lo = x;
        } else {
            hi = x;
        }
        let next = 0.5 * (lo + hi);
        if (next - x).abs() <= 1e-16 * x.max(1e-16) {
            break;
        }
        x = next;
    }
    // Newton polish: d/dx I_x(a,b) = x^(a-1) (1-x)^(b-1) / B(a,b).
    for _ in 0..4 {
        let f = reg_inc_beta(a, b, x)? - p;
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_beta(a, b);
        let pdf = ln_pdf.exp();
        if pdf > 0.0 && pdf.is_finite() {
            let step = f / pdf;
            let candidate = x - step;
            if candidate > lo && candidate < hi {
                x = candidate;
            }
        }
    }
    Ok(x.clamp(0.0, 1.0))
}

/// Error function `erf(x)`, accurate to ~1e-13, via the regularized
/// incomplete gamma function: `erf(x) = sign(x) · P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_inc_gamma_p(0.5, x * x).unwrap_or(1.0);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Complementary error function `erfc(x) = 1 − erf(x)` computed without
/// catastrophic cancellation for large positive `x`.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        2.0 - erfc(-x)
    } else if x == 0.0 {
        1.0
    } else {
        reg_inc_gamma_q(0.5, x * x).unwrap_or(0.0)
    }
}

/// Regularized lower incomplete gamma function `P(a, x)` (series for
/// `x < a + 1`, continued fraction otherwise).
pub fn reg_inc_gamma_p(a: f64, x: f64) -> Result<f64, StatsError> {
    // The partial_cmp form also rejects NaN parameters.
    if a.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || x < 0.0 {
        return Err(StatsError::InvalidArgument {
            reason: "gamma parameters must satisfy a > 0, x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        Ok(1.0 - gamma_cf(a, x)?)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_inc_gamma_q(a: f64, x: f64) -> Result<f64, StatsError> {
    // The partial_cmp form also rejects NaN parameters.
    if a.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || x < 0.0 {
        return Err(StatsError::InvalidArgument {
            reason: "gamma parameters must satisfy a > 0, x >= 0",
        });
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_series(a, x)?)
    } else {
        gamma_cf(a, x)
    }
}

fn gamma_series(a: f64, x: f64) -> Result<f64, StatsError> {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 3e-16;
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            let ln_pre = -x + a * x.ln() - ln_gamma(a);
            return Ok(sum * ln_pre.exp());
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_series",
    })
}

fn gamma_cf(a: f64, x: f64) -> Result<f64, StatsError> {
    const MAX_ITER: usize = 500;
    const EPS: f64 = 3e-16;
    const FPMIN: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            let ln_pre = -x + a * x.ln() - ln_gamma(a);
            return Ok(h * ln_pre.exp());
        }
    }
    Err(StatsError::NoConvergence {
        routine: "gamma_cf",
    })
}

/// Standard normal cumulative distribution function `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Standard normal quantile `Φ⁻¹(p)` (Acklam's rational approximation with
/// one Newton refinement against the accurate [`normal_cdf`]).
///
/// # Errors
///
/// Returns [`StatsError`] if `p` is not strictly inside `(0, 1)`.
pub fn normal_quantile(p: f64) -> Result<f64, StatsError> {
    if !p.is_finite() || p <= 0.0 || p >= 1.0 {
        return Err(StatsError::InvalidProbability {
            name: "p",
            value: p,
        });
    }
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Newton step: x <- x - (Φ(x) - p) / φ(x).
    let e = normal_cdf(x) - p;
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    Ok(if pdf > 0.0 { x - e / pdf } else { x })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0_f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            let lg = ln_gamma(n as f64);
            assert!((lg - fact.ln()).abs() < 1e-10, "Γ({n}) mismatch");
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        let lg = ln_gamma(0.5);
        assert!((lg - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = √π / 2.
        let lg = ln_gamma(1.5);
        assert!((lg - (std::f64::consts::PI.sqrt() / 2.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn reg_inc_beta_uniform_case() {
        for x in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let v = reg_inc_beta(1.0, 1.0, x).unwrap();
            assert!((v - x).abs() < 1e-13);
        }
    }

    #[test]
    fn reg_inc_beta_symmetry() {
        // I_x(a, b) = 1 − I_{1−x}(b, a).
        for &(a, b, x) in &[
            (2.0, 5.0, 0.3),
            (0.5, 0.5, 0.7),
            (10.0, 1.0, 0.9),
            (200.0, 3.0, 0.99),
        ] {
            let lhs = reg_inc_beta(a, b, x).unwrap();
            let rhs = 1.0 - reg_inc_beta(b, a, 1.0 - x).unwrap();
            assert!(
                (lhs - rhs).abs() < 1e-12,
                "symmetry failed for ({a},{b},{x})"
            );
        }
    }

    #[test]
    fn reg_inc_beta_known_value() {
        // I_0.5(2, 2) = 0.5 by symmetry; I_x(2,1) = x².
        assert!((reg_inc_beta(2.0, 2.0, 0.5).unwrap() - 0.5).abs() < 1e-13);
        assert!((reg_inc_beta(2.0, 1.0, 0.4).unwrap() - 0.16).abs() < 1e-13);
        // I_x(1, b) = 1 - (1-x)^b.
        let v = reg_inc_beta(1.0, 3.0, 0.2).unwrap();
        assert!((v - (1.0 - 0.8f64.powi(3))).abs() < 1e-13);
    }

    #[test]
    fn beta_quantile_inverts_cdf() {
        for &(a, b) in &[
            (1.0, 1.0),
            (2.0, 5.0),
            (0.5, 0.5),
            (4.0, 997.0),
            (200.0, 1.0),
        ] {
            for &p in &[0.001, 0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
                let x = beta_quantile(p, a, b).unwrap();
                let back = reg_inc_beta(a, b, x).unwrap();
                assert!(
                    (back - p).abs() < 1e-9,
                    "roundtrip failed for ({a},{b},{p}): {back}"
                );
            }
        }
    }

    #[test]
    fn beta_quantile_endpoints() {
        assert_eq!(beta_quantile(0.0, 2.0, 3.0).unwrap(), 0.0);
        assert_eq!(beta_quantile(1.0, 2.0, 3.0).unwrap(), 1.0);
    }

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-15);
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(-1.0) + 0.842_700_792_949_714_9).abs() < 1e-12);
        assert!((erf(2.0) - 0.995_322_265_018_952_7).abs() < 1e-12);
    }

    #[test]
    fn erfc_large_x_no_cancellation() {
        // erfc(5) ≈ 1.5374597944280349e-12; naive 1 − erf(5) would lose all digits.
        let v = erfc(5.0);
        assert!((v - 1.537_459_794_428_035e-12).abs() / v < 1e-6);
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-10);
        for x in [-3.0, -1.0, 0.5, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[1e-6, 0.001, 0.025, 0.5, 0.975, 0.999, 1.0 - 1e-6] {
            let x = normal_quantile(p).unwrap();
            assert!(
                (normal_cdf(x) - p).abs() < 1e-11,
                "quantile roundtrip at {p}"
            );
        }
    }

    #[test]
    fn normal_quantile_rejects_endpoints() {
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
        assert!(normal_quantile(f64::NAN).is_err());
    }

    #[test]
    fn inc_gamma_complementarity() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 5.0), (10.0, 3.0), (0.5, 30.0)] {
            let p = reg_inc_gamma_p(a, x).unwrap();
            let q = reg_inc_gamma_q(a, x).unwrap();
            assert!((p + q - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn inc_gamma_exponential_case() {
        // P(1, x) = 1 − e^{−x}.
        for x in [0.1, 1.0, 4.0] {
            let p = reg_inc_gamma_p(1.0, x).unwrap();
            assert!((p - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }
}
