//! Descriptive statistics: streaming moments (Welford), quantiles and
//! histograms used throughout the experiment harness.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// Numerically stable streaming mean/variance accumulator (Welford's
/// algorithm).
///
/// # Examples
///
/// ```
/// use tauw_stats::descriptive::Moments;
///
/// let mut m = Moments::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 4);
/// assert!((m.mean() - 2.5).abs() < 1e-12);
/// assert!((m.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Moments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Moments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n − 1`; 0 for fewer than two samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`−inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean = new_mean;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for Moments {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Moments {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut m = Moments::new();
        m.extend(iter);
        m
    }
}

/// Quantile of a sample with linear interpolation between order statistics
/// (type-7, the common default). `q ∈ [0, 1]`.
///
/// # Errors
///
/// Returns [`StatsError`] on empty input or `q` outside `[0, 1]`.
pub fn quantile(values: &[f64], q: f64) -> Result<f64, StatsError> {
    if values.is_empty() {
        return Err(StatsError::EmptyInput { name: "values" });
    }
    crate::error::check_probability("q", q)?;
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted(&sorted, q))
}

/// Same as [`quantile`] but assumes `sorted` is already in ascending order;
/// useful when many quantiles are needed from the same sample.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// A fixed-width histogram over `[lo, hi)` used by the Fig. 5 experiment
/// (distribution of uncertainty across cases).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if `bins == 0` or the range is empty/NaN.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::InvalidArgument {
                reason: "bins must be positive",
            });
        }
        // The partial_cmp form also rejects NaN edges.
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less) {
            return Err(StatsError::InvalidArgument {
                reason: "histogram range must be non-empty",
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        })
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / width) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(low_edge, high_edge)` for bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + i as f64 * width, self.lo + (i + 1) as f64 * width)
    }

    /// Total observations recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Fraction of observations in bin `i` (0 if no observations).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_two_pass() {
        let xs: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.731).sin() * 5.0 + 2.0)
            .collect();
        let m: Moments = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.sample_variance() - var).abs() < 1e-12);
        assert_eq!(m.count(), 100);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = (0..30).map(|i| 100.0 - i as f64).collect();
        let mut a: Moments = xs.iter().copied().collect();
        let b: Moments = ys.iter().copied().collect();
        a.merge(&b);
        let all: Moments = xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Moments = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&Moments::new());
        assert_eq!(a, before);
        let mut empty = Moments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn empty_moments_are_safe() {
        let m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
    }

    #[test]
    fn quantile_median_and_extremes() {
        let xs = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert_eq!(quantile(&xs, 0.5).unwrap(), 3.0);
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 5.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert!((quantile(&xs, 0.25).unwrap() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_rejects_bad_inputs() {
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&[1.0], 1.5).is_err());
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        for x in [0.1, 0.3, 0.6, 0.9, 1.5, -0.2] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.bin_edges(0), (0.0, 0.25));
        assert!((h.fraction(0) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_construction() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 0.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
    }
}
