//! Percentile bootstrap confidence intervals with a dependency-free,
//! deterministic PRNG.
//!
//! `tauw-stats` deliberately has no runtime dependency on `rand`; the
//! experiment harness uses bootstrap intervals to report the stability of
//! Table I metrics, and a small SplitMix64 generator is more than adequate
//! for resampling indices.

use crate::error::StatsError;

/// Minimal SplitMix64 PRNG (Steele et al. 2014). Deterministic, fast, and
/// good enough for bootstrap index resampling; **not** cryptographic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)` via Lemire's multiply-shift (unbiased
    /// enough for bootstrap purposes).
    pub fn next_index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A two-sided percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapInterval {
    /// Statistic evaluated on the original sample.
    pub point: f64,
    /// Lower percentile endpoint.
    pub lower: f64,
    /// Upper percentile endpoint.
    pub upper: f64,
    /// Number of bootstrap replicates used.
    pub replicates: usize,
}

/// Computes a percentile bootstrap interval for an arbitrary statistic of a
/// sample of `n` items.
///
/// `statistic` receives a slice of resampled indices into the original data
/// and must return the statistic value; this avoids copying the (possibly
/// multi-column) underlying data for every replicate.
///
/// # Errors
///
/// Returns [`StatsError`] if `n == 0`, `replicates == 0`, or `confidence`
/// is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use tauw_stats::bootstrap::bootstrap_interval;
///
/// let data = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let ci = bootstrap_interval(data.len(), 500, 0.9, 42, |idx| {
///     idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64
/// })?;
/// assert!(ci.lower <= ci.point && ci.point <= ci.upper);
/// # Ok::<(), tauw_stats::StatsError>(())
/// ```
pub fn bootstrap_interval<F>(
    n: usize,
    replicates: usize,
    confidence: f64,
    seed: u64,
    mut statistic: F,
) -> Result<BootstrapInterval, StatsError>
where
    F: FnMut(&[usize]) -> f64,
{
    if n == 0 {
        return Err(StatsError::EmptyInput { name: "sample" });
    }
    if replicates == 0 {
        return Err(StatsError::InvalidArgument {
            reason: "replicates must be positive",
        });
    }
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    let identity: Vec<usize> = (0..n).collect();
    let point = statistic(&identity);

    let mut rng = SplitMix64::new(seed);
    let mut values = Vec::with_capacity(replicates);
    let mut resample = vec![0usize; n];
    for _ in 0..replicates {
        for slot in resample.iter_mut() {
            *slot = rng.next_index(n);
        }
        values.push(statistic(&resample));
    }
    values.sort_by(f64::total_cmp);
    let alpha = 1.0 - confidence;
    let lower = crate::descriptive::quantile_sorted(&values, alpha / 2.0);
    let upper = crate::descriptive::quantile_sorted(&values, 1.0 - alpha / 2.0);
    Ok(BootstrapInterval {
        point,
        lower,
        upper,
        replicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn splitmix_index_in_range_and_roughly_uniform() {
        let mut rng = SplitMix64::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.next_index(10)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1300).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn bootstrap_mean_interval_contains_truth() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let truth = 4.5;
        let ci = bootstrap_interval(data.len(), 1000, 0.99, 11, |idx| {
            idx.iter().map(|&i| data[i]).sum::<f64>() / idx.len() as f64
        })
        .unwrap();
        assert!(ci.lower <= truth && truth <= ci.upper);
        assert!((ci.point - truth).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_interval_narrows_with_sample_size() {
        let small: Vec<f64> = (0..20).map(|i| (i % 10) as f64).collect();
        let large: Vec<f64> = (0..2000).map(|i| (i % 10) as f64).collect();
        let ci_small = bootstrap_interval(small.len(), 500, 0.9, 5, |idx| {
            idx.iter().map(|&i| small[i]).sum::<f64>() / idx.len() as f64
        })
        .unwrap();
        let ci_large = bootstrap_interval(large.len(), 500, 0.9, 5, |idx| {
            idx.iter().map(|&i| large[i]).sum::<f64>() / idx.len() as f64
        })
        .unwrap();
        assert!(ci_large.upper - ci_large.lower < ci_small.upper - ci_small.lower);
    }

    #[test]
    fn bootstrap_rejects_bad_inputs() {
        assert!(bootstrap_interval(0, 10, 0.9, 1, |_| 0.0).is_err());
        assert!(bootstrap_interval(5, 0, 0.9, 1, |_| 0.0).is_err());
        assert!(bootstrap_interval(5, 10, 0.0, 1, |_| 0.0).is_err());
        assert!(bootstrap_interval(5, 10, 1.0, 1, |_| 0.0).is_err());
    }
}
