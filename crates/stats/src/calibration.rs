//! Calibration diagnostics: quantile-binned calibration curves (the paper's
//! Fig. 6) and expected/maximum calibration error.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// One point of a calibration curve: a group of samples with similar
/// predicted certainty and their observed correctness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPoint {
    /// Mean predicted certainty (1 − uncertainty) in the group.
    pub predicted_certainty: f64,
    /// Observed fraction of correct outcomes in the group.
    pub observed_correctness: f64,
    /// Number of samples in the group.
    pub count: usize,
}

impl CalibrationPoint {
    /// Signed calibration gap; positive values mean *underconfidence*
    /// (observed correctness exceeds predicted certainty), negative values
    /// mean *overconfidence*.
    pub fn gap(&self) -> f64 {
        self.observed_correctness - self.predicted_certainty
    }
}

/// A calibration curve over quantile bins of predicted certainty, matching
/// the construction of the paper's Fig. 6 ("quantiles of the predicted
/// certainty are plotted against their actual correctness in 10% steps").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCurve {
    /// Points ordered by increasing predicted certainty.
    pub points: Vec<CalibrationPoint>,
}

impl CalibrationCurve {
    /// Builds a calibration curve from per-sample uncertainties and failure
    /// indicators using `bins` quantile groups (the paper uses 10).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] on empty/mismatched inputs, `bins == 0`, or
    /// non-probability uncertainties.
    ///
    /// # Examples
    ///
    /// ```
    /// use tauw_stats::calibration::CalibrationCurve;
    ///
    /// let u = [0.1, 0.2, 0.3, 0.4];
    /// let failed = [false, false, true, false];
    /// let curve = CalibrationCurve::from_uncertainties(&u, &failed, 2)?;
    /// assert_eq!(curve.points.len(), 2);
    /// # Ok::<(), tauw_stats::StatsError>(())
    /// ```
    pub fn from_uncertainties(
        uncertainties: &[f64],
        failures: &[bool],
        bins: usize,
    ) -> Result<Self, StatsError> {
        if uncertainties.is_empty() {
            return Err(StatsError::EmptyInput {
                name: "uncertainties",
            });
        }
        if uncertainties.len() != failures.len() {
            return Err(StatsError::LengthMismatch {
                left: uncertainties.len(),
                right: failures.len(),
            });
        }
        if bins == 0 {
            return Err(StatsError::InvalidArgument {
                reason: "bins must be positive",
            });
        }
        for &u in uncertainties {
            crate::error::check_probability("uncertainty", u)?;
        }
        let n = uncertainties.len();
        // Sort by predicted certainty ascending.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let ca = 1.0 - uncertainties[a];
            let cb = 1.0 - uncertainties[b];
            ca.total_cmp(&cb)
        });
        let per = n.div_ceil(bins);
        let mut points = Vec::with_capacity(bins);
        for chunk in order.chunks(per.max(1)) {
            let certainty =
                chunk.iter().map(|&i| 1.0 - uncertainties[i]).sum::<f64>() / chunk.len() as f64;
            let correct =
                chunk.iter().filter(|&&i| !failures[i]).count() as f64 / chunk.len() as f64;
            points.push(CalibrationPoint {
                predicted_certainty: certainty,
                observed_correctness: correct,
                count: chunk.len(),
            });
        }
        Ok(CalibrationCurve { points })
    }

    /// Expected calibration error: count-weighted mean absolute gap.
    pub fn ece(&self) -> f64 {
        let total: usize = self.points.iter().map(|p| p.count).sum();
        if total == 0 {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.count as f64 * p.gap().abs())
            .sum::<f64>()
            / total as f64
    }

    /// Maximum calibration error: largest absolute gap over groups.
    pub fn mce(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.gap().abs())
            .fold(0.0, f64::max)
    }

    /// Count-weighted mean *signed* gap; negative values indicate net
    /// overconfidence.
    pub fn mean_signed_gap(&self) -> f64 {
        let total: usize = self.points.iter().map(|p| p.count).sum();
        if total == 0 {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.count as f64 * p.gap())
            .sum::<f64>()
            / total as f64
    }

    /// Range of predicted certainties spanned by the curve (the paper notes
    /// the taUW has the widest range of all approaches).
    pub fn certainty_range(&self) -> f64 {
        let min = self
            .points
            .iter()
            .map(|p| p.predicted_certainty)
            .fold(f64::INFINITY, f64::min);
        let max = self
            .points
            .iter()
            .map(|p| p.predicted_certainty)
            .fold(f64::NEG_INFINITY, f64::max);
        if self.points.is_empty() {
            0.0
        } else {
            max - min
        }
    }

    /// Fraction of groups that are overconfident (observed correctness below
    /// predicted certainty by more than `slack`).
    pub fn overconfident_fraction(&self, slack: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().filter(|p| p.gap() < -slack).count() as f64 / self.points.len() as f64
    }
}

/// Spiegelhalter's Z statistic for calibration: under the null hypothesis
/// that every forecast `p_i` equals the true failure probability of case
/// `i`, `Z ~ N(0, 1)` asymptotically. `|Z| > 1.96` rejects calibration at
/// the 5% level; the *sign* indicates the direction (positive = observed
/// failures exceed forecasts = overconfident estimates).
///
/// # Errors
///
/// Returns [`StatsError`] on empty/mismatched inputs, non-probability
/// forecasts, or if every forecast is exactly 0, 0.5 or 1 (the statistic's
/// variance is zero there).
///
/// # Examples
///
/// ```
/// use tauw_stats::calibration::spiegelhalter_z;
///
/// // Forecasts of 0.2 with exactly one failure in five: well calibrated.
/// let forecasts = [0.2; 100];
/// let failures: Vec<bool> = (0..100).map(|i| i % 5 == 0).collect();
/// let z = spiegelhalter_z(&forecasts, &failures)?;
/// assert!(z.abs() < 0.1);
/// # Ok::<(), tauw_stats::StatsError>(())
/// ```
pub fn spiegelhalter_z(forecasts: &[f64], failures: &[bool]) -> Result<f64, StatsError> {
    if forecasts.is_empty() {
        return Err(StatsError::EmptyInput { name: "forecasts" });
    }
    if forecasts.len() != failures.len() {
        return Err(StatsError::LengthMismatch {
            left: forecasts.len(),
            right: failures.len(),
        });
    }
    let mut numerator = 0.0;
    let mut variance = 0.0;
    for (&p, &y) in forecasts.iter().zip(failures) {
        crate::error::check_probability("forecast", p)?;
        let o = if y { 1.0 } else { 0.0 };
        let w = 1.0 - 2.0 * p;
        numerator += (o - p) * w;
        variance += w * w * p * (1.0 - p);
    }
    if variance <= 0.0 {
        return Err(StatsError::InvalidArgument {
            reason: "all forecasts are 0, 0.5 or 1; the Z statistic has zero variance there",
        });
    }
    Ok(numerator / variance.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spiegelhalter_z_near_zero_when_calibrated() {
        // p = 0.2 with exactly 20% failures.
        let forecasts = [0.2; 200];
        let failures: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        let z = spiegelhalter_z(&forecasts, &failures).unwrap();
        assert!(z.abs() < 0.05, "z = {z}");
    }

    #[test]
    fn spiegelhalter_z_positive_for_overconfident() {
        // Claim 1% risk, observe 20% failures.
        let forecasts = [0.01; 200];
        let failures: Vec<bool> = (0..200).map(|i| i % 5 == 0).collect();
        let z = spiegelhalter_z(&forecasts, &failures).unwrap();
        assert!(z > 2.0, "z = {z} should strongly reject");
    }

    #[test]
    fn spiegelhalter_z_negative_for_underconfident() {
        // Claim 40% risk, observe none.
        let forecasts = [0.4; 100];
        let failures = [false; 100];
        let z = spiegelhalter_z(&forecasts, &failures).unwrap();
        assert!(z < -2.0, "z = {z}");
    }

    #[test]
    fn spiegelhalter_z_rejects_degenerate_inputs() {
        assert!(spiegelhalter_z(&[], &[]).is_err());
        assert!(spiegelhalter_z(&[0.5], &[]).is_err());
        assert!(spiegelhalter_z(&[0.0, 1.0], &[false, true]).is_err());
        assert!(spiegelhalter_z(&[1.5], &[true]).is_err());
    }

    #[test]
    fn perfectly_calibrated_curve_has_zero_ece() {
        // 10% uncertainty, exactly 1 failure in 10.
        let u = [0.1; 10];
        let mut failed = [false; 10];
        failed[0] = true;
        let curve = CalibrationCurve::from_uncertainties(&u, &failed, 1).unwrap();
        assert!(curve.ece() < 1e-12);
        assert!(curve.mce() < 1e-12);
    }

    #[test]
    fn overconfident_model_has_negative_gap() {
        // Claims 1% uncertainty but fails half the time.
        let u = [0.01; 10];
        let failed = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        let curve = CalibrationCurve::from_uncertainties(&u, &failed, 1).unwrap();
        assert!(curve.points[0].gap() < -0.4);
        assert_eq!(curve.overconfident_fraction(0.1), 1.0);
        assert!(curve.mean_signed_gap() < 0.0);
    }

    #[test]
    fn underconfident_model_has_positive_gap() {
        let u = [0.5; 10];
        let failed = [false; 10];
        let curve = CalibrationCurve::from_uncertainties(&u, &failed, 1).unwrap();
        assert!(curve.points[0].gap() > 0.4);
        assert_eq!(curve.overconfident_fraction(0.1), 0.0);
    }

    #[test]
    fn points_sorted_by_certainty() {
        let u = [0.9, 0.1, 0.5, 0.3, 0.7, 0.2, 0.8, 0.4, 0.6, 0.05];
        let failed = [false; 10];
        let curve = CalibrationCurve::from_uncertainties(&u, &failed, 5).unwrap();
        for w in curve.points.windows(2) {
            assert!(w[0].predicted_certainty <= w[1].predicted_certainty);
        }
        let total: usize = curve.points.iter().map(|p| p.count).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn ten_bins_matches_paper_construction() {
        let u: Vec<f64> = (0..1000).map(|i| i as f64 / 2000.0).collect();
        let failed: Vec<bool> = (0..1000).map(|i| i % 10 == 0).collect();
        let curve = CalibrationCurve::from_uncertainties(&u, &failed, 10).unwrap();
        assert_eq!(curve.points.len(), 10);
        for p in &curve.points {
            assert_eq!(p.count, 100);
        }
    }

    #[test]
    fn certainty_range_widens_with_spread() {
        let narrow =
            CalibrationCurve::from_uncertainties(&[0.1, 0.12, 0.11, 0.13], &[false; 4], 2).unwrap();
        let wide =
            CalibrationCurve::from_uncertainties(&[0.01, 0.3, 0.6, 0.9], &[false; 4], 2).unwrap();
        assert!(wide.certainty_range() > narrow.certainty_range());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(CalibrationCurve::from_uncertainties(&[], &[], 10).is_err());
        assert!(CalibrationCurve::from_uncertainties(&[0.5], &[], 10).is_err());
        assert!(CalibrationCurve::from_uncertainties(&[0.5], &[true], 0).is_err());
        assert!(CalibrationCurve::from_uncertainties(&[1.5], &[true], 10).is_err());
    }
}
