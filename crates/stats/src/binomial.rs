//! One-sided binomial confidence bounds.
//!
//! The uncertainty wrapper's "dependability" guarantee rests on this module:
//! for each decision-tree leaf with `n` calibration samples and `k` observed
//! failures, the wrapper reports not the point estimate `k / n` but an upper
//! confidence bound on the true failure probability at a requested
//! confidence level (the paper uses 0.999). The default method is
//! Clopper–Pearson, which is *exact* (never anti-conservative); Wilson,
//! Jeffreys and Hoeffding are provided for the ablation experiments.

use crate::error::{check_probability, StatsError};
use crate::special::{beta_quantile, normal_quantile};
use serde::{Deserialize, Serialize};

/// Strategy used to turn `(failures, trials)` into a confidence bound on the
/// underlying failure probability.
///
/// All methods are *one-sided*: `upper_bound` at confidence `γ` returns a
/// value `u` such that `P(p ≤ u) ≥ γ` under the binomial model (exactly for
/// [`ClopperPearson`](BoundMethod::ClopperPearson) and
/// [`Hoeffding`](BoundMethod::Hoeffding), approximately for the others).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BoundMethod {
    /// Exact bound from inverting the binomial CDF via the beta quantile.
    /// Conservative by construction; the paper's choice.
    #[default]
    ClopperPearson,
    /// Wilson score interval endpoint. Good average coverage, may be
    /// slightly anti-conservative for extreme `p`.
    Wilson,
    /// Bayesian bound with the Jeffreys prior Beta(1/2, 1/2). Equal-tailed
    /// credible bound; close to Clopper–Pearson but less conservative.
    Jeffreys,
    /// Distribution-free Hoeffding inequality bound
    /// `p̂ + sqrt(ln(1/α) / (2n))`. Always valid, typically loose.
    Hoeffding,
}

impl BoundMethod {
    /// All supported methods, for sweeps and ablation studies.
    pub const ALL: [BoundMethod; 4] = [
        BoundMethod::ClopperPearson,
        BoundMethod::Wilson,
        BoundMethod::Jeffreys,
        BoundMethod::Hoeffding,
    ];

    /// A short stable name for reports (`"clopper-pearson"`, ...).
    pub fn name(self) -> &'static str {
        match self {
            BoundMethod::ClopperPearson => "clopper-pearson",
            BoundMethod::Wilson => "wilson",
            BoundMethod::Jeffreys => "jeffreys",
            BoundMethod::Hoeffding => "hoeffding",
        }
    }
}

impl std::fmt::Display for BoundMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn check_counts(failures: u64, trials: u64) -> Result<(), StatsError> {
    if trials == 0 {
        return Err(StatsError::InvalidCount {
            constraint: "trials must be positive",
        });
    }
    if failures > trials {
        return Err(StatsError::InvalidCount {
            constraint: "failures must not exceed trials",
        });
    }
    Ok(())
}

/// One-sided **upper** confidence bound on a binomial proportion.
///
/// Given `failures` observed in `trials` Bernoulli draws, returns `u` such
/// that the true failure probability exceeds `u` with probability at most
/// `1 − confidence`.
///
/// # Errors
///
/// Returns [`StatsError`] if `trials == 0`, `failures > trials`, or
/// `confidence` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use tauw_stats::binomial::{upper_bound, BoundMethod};
///
/// // Zero failures in 959 samples at 99.9% confidence: this is the kind of
/// // leaf that yields the paper's u = 0.0072 "lowest guaranteed uncertainty".
/// let u = upper_bound(BoundMethod::ClopperPearson, 0, 959, 0.999)?;
/// assert!((u - 0.0072).abs() < 3e-4);
/// # Ok::<(), tauw_stats::StatsError>(())
/// ```
pub fn upper_bound(
    method: BoundMethod,
    failures: u64,
    trials: u64,
    confidence: f64,
) -> Result<f64, StatsError> {
    check_counts(failures, trials)?;
    check_probability("confidence", confidence)?;
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    let n = trials as f64;
    let k = failures as f64;
    let p_hat = k / n;
    let bound = match method {
        BoundMethod::ClopperPearson => {
            if failures == trials {
                1.0
            } else {
                beta_quantile(confidence, k + 1.0, n - k)?
            }
        }
        BoundMethod::Wilson => {
            let z = normal_quantile(confidence)?;
            let z2 = z * z;
            let denom = 1.0 + z2 / n;
            let center = p_hat + z2 / (2.0 * n);
            let half = z * (p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)).sqrt();
            (center + half) / denom
        }
        BoundMethod::Jeffreys => {
            if failures == trials {
                1.0
            } else {
                beta_quantile(confidence, k + 0.5, n - k + 0.5)?
            }
        }
        BoundMethod::Hoeffding => {
            let alpha = 1.0 - confidence;
            p_hat + ((1.0 / alpha).ln() / (2.0 * n)).sqrt()
        }
    };
    Ok(bound.clamp(0.0, 1.0))
}

/// One-sided **lower** confidence bound on a binomial proportion.
///
/// Symmetric counterpart of [`upper_bound`]; mainly used for scope-compliance
/// diagnostics and tests.
///
/// # Errors
///
/// Same conditions as [`upper_bound`].
pub fn lower_bound(
    method: BoundMethod,
    failures: u64,
    trials: u64,
    confidence: f64,
) -> Result<f64, StatsError> {
    check_counts(failures, trials)?;
    check_probability("confidence", confidence)?;
    if !(confidence > 0.0 && confidence < 1.0) {
        return Err(StatsError::InvalidProbability {
            name: "confidence",
            value: confidence,
        });
    }
    // lower bound on p for k failures = 1 − upper bound on (1−p) for n−k "failures".
    let complement = upper_bound(method, trials - failures, trials, confidence)?;
    Ok((1.0 - complement).clamp(0.0, 1.0))
}

/// Exact binomial CDF `P(X ≤ k)` for `X ~ Binomial(n, p)`, via the
/// regularized incomplete beta function.
///
/// # Errors
///
/// Returns [`StatsError`] for invalid `p` or `k > n`.
pub fn binomial_cdf(k: u64, n: u64, p: f64) -> Result<f64, StatsError> {
    check_probability("p", p)?;
    if k > n {
        return Err(StatsError::InvalidCount {
            constraint: "k must not exceed n",
        });
    }
    if k == n {
        return Ok(1.0);
    }
    // P(X ≤ k) = I_{1−p}(n−k, k+1).
    crate::special::reg_inc_beta((n - k) as f64, k as f64 + 1.0, 1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clopper_pearson_zero_failures_rule_of_three() {
        // With 0/n failures and confidence γ, CP upper = 1 − (1−γ)^(1/n),
        // ≈ ln(1/(1−γ)) / n for small bounds ("rule of three" generalised).
        for n in [50u64, 200, 1000, 10000] {
            let u = upper_bound(BoundMethod::ClopperPearson, 0, n, 0.999).unwrap();
            let exact = 1.0 - (1.0f64 - 0.999).powf(1.0 / n as f64);
            assert!((u - exact).abs() < 1e-9, "n={n}: {u} vs {exact}");
        }
    }

    #[test]
    fn clopper_pearson_covers_point_estimate() {
        for &(k, n) in &[(0u64, 200u64), (1, 200), (10, 200), (100, 200), (199, 200)] {
            let u = upper_bound(BoundMethod::ClopperPearson, k, n, 0.999).unwrap();
            assert!(
                u >= k as f64 / n as f64,
                "bound below point estimate for {k}/{n}"
            );
        }
    }

    #[test]
    fn clopper_pearson_all_failures_is_one() {
        assert_eq!(
            upper_bound(BoundMethod::ClopperPearson, 7, 7, 0.99).unwrap(),
            1.0
        );
    }

    #[test]
    fn clopper_pearson_exact_coverage_property() {
        // The CP upper bound u(k) satisfies P(X ≤ k; n, u) ≤ 1 − γ:
        // if the true p equalled the bound, seeing ≤ k failures is rare.
        let n = 200;
        for k in [0u64, 1, 3, 10, 50] {
            let u = upper_bound(BoundMethod::ClopperPearson, k, n, 0.999).unwrap();
            let cdf = binomial_cdf(k, n, u).unwrap();
            assert!(cdf <= 1e-3 + 1e-9, "k={k}: CDF at bound = {cdf}");
        }
    }

    #[test]
    fn bounds_are_monotone_in_failures() {
        for method in BoundMethod::ALL {
            let mut prev = 0.0;
            for k in 0..=50u64 {
                let u = upper_bound(method, k, 50, 0.99).unwrap();
                assert!(u >= prev - 1e-12, "{method}: non-monotone at k={k}");
                prev = u;
            }
        }
    }

    #[test]
    fn bounds_shrink_with_more_trials() {
        for method in BoundMethod::ALL {
            let wide = upper_bound(method, 5, 50, 0.999).unwrap();
            let narrow = upper_bound(method, 100, 1000, 0.999).unwrap();
            assert!(
                narrow < wide,
                "{method}: more data should tighten the bound"
            );
        }
    }

    #[test]
    fn bounds_grow_with_confidence() {
        for method in BoundMethod::ALL {
            let lo = upper_bound(method, 3, 300, 0.9).unwrap();
            let hi = upper_bound(method, 3, 300, 0.9999).unwrap();
            assert!(hi > lo, "{method}: higher confidence must widen the bound");
        }
    }

    #[test]
    fn hoeffding_dominates_clopper_pearson_mid_range() {
        // Hoeffding is distribution-free and hence looser around p ≈ 0.5.
        let cp = upper_bound(BoundMethod::ClopperPearson, 100, 200, 0.999).unwrap();
        let hf = upper_bound(BoundMethod::Hoeffding, 100, 200, 0.999).unwrap();
        assert!(hf >= cp);
    }

    #[test]
    fn jeffreys_between_point_and_cp() {
        let k = 4;
        let n = 500;
        let cp = upper_bound(BoundMethod::ClopperPearson, k, n, 0.999).unwrap();
        let jf = upper_bound(BoundMethod::Jeffreys, k, n, 0.999).unwrap();
        assert!(jf > k as f64 / n as f64);
        assert!(
            jf <= cp + 1e-12,
            "Jeffreys should not exceed CP: {jf} vs {cp}"
        );
    }

    #[test]
    fn lower_bound_complements_upper() {
        for method in BoundMethod::ALL {
            let lo = lower_bound(method, 20, 100, 0.99).unwrap();
            let up = upper_bound(method, 20, 100, 0.99).unwrap();
            assert!(lo <= 0.2 && 0.2 <= up);
            assert!(lo >= 0.0 && up <= 1.0);
        }
    }

    #[test]
    fn lower_bound_zero_failures_is_zero() {
        let lo = lower_bound(BoundMethod::ClopperPearson, 0, 100, 0.999).unwrap();
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(upper_bound(BoundMethod::ClopperPearson, 1, 0, 0.9).is_err());
        assert!(upper_bound(BoundMethod::ClopperPearson, 5, 3, 0.9).is_err());
        assert!(upper_bound(BoundMethod::ClopperPearson, 1, 10, 0.0).is_err());
        assert!(upper_bound(BoundMethod::ClopperPearson, 1, 10, 1.0).is_err());
        assert!(upper_bound(BoundMethod::ClopperPearson, 1, 10, f64::NAN).is_err());
    }

    #[test]
    fn binomial_cdf_matches_direct_sum() {
        // Direct summation for small n.
        fn direct(k: u64, n: u64, p: f64) -> f64 {
            let mut total = 0.0;
            for i in 0..=k {
                let mut ln_c = 0.0;
                for j in 0..i {
                    ln_c += ((n - j) as f64).ln() - ((j + 1) as f64).ln();
                }
                total += (ln_c + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp();
            }
            total
        }
        for &(k, n, p) in &[(2u64, 10u64, 0.3), (0, 5, 0.5), (7, 12, 0.8)] {
            let lhs = binomial_cdf(k, n, p).unwrap();
            let rhs = direct(k, n, p);
            assert!((lhs - rhs).abs() < 1e-10, "({k},{n},{p}): {lhs} vs {rhs}");
        }
    }

    #[test]
    fn method_names_are_stable() {
        assert_eq!(BoundMethod::ClopperPearson.name(), "clopper-pearson");
        assert_eq!(BoundMethod::default(), BoundMethod::ClopperPearson);
        assert_eq!(format!("{}", BoundMethod::Wilson), "wilson");
    }
}
