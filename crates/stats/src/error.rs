//! Error type shared by the statistical routines.

use std::error::Error;
use std::fmt;

/// Errors produced by `tauw-stats` routines.
///
/// All variants carry enough context to diagnose the offending call without
/// a debugger; the `Display` output is lowercase without trailing
/// punctuation per Rust API guidelines (C-GOOD-ERR).
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A probability-like argument was outside `[0, 1]` or not finite.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A count argument was inconsistent (e.g. `successes > trials`).
    InvalidCount {
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// An input slice was empty where at least one element is required.
    EmptyInput {
        /// Name of the empty input.
        name: &'static str,
    },
    /// Two parallel slices had different lengths.
    LengthMismatch {
        /// Length of the first slice.
        left: usize,
        /// Length of the second slice.
        right: usize,
    },
    /// A numerical routine failed to converge.
    NoConvergence {
        /// Name of the routine.
        routine: &'static str,
    },
    /// A generic invalid argument with an explanation.
    InvalidArgument {
        /// Description of what was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::InvalidProbability { name, value } => {
                write!(
                    f,
                    "parameter `{name}` must be a probability in [0, 1], got {value}"
                )
            }
            StatsError::InvalidCount { constraint } => {
                write!(f, "invalid count: {constraint}")
            }
            StatsError::EmptyInput { name } => {
                write!(f, "input `{name}` must not be empty")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(
                    f,
                    "parallel inputs have different lengths ({left} vs {right})"
                )
            }
            StatsError::NoConvergence { routine } => {
                write!(f, "routine `{routine}` failed to converge")
            }
            StatsError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl Error for StatsError {}

/// Validates that `value` is a finite probability in `[0, 1]`.
pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<(), StatsError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(StatsError::InvalidProbability { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_period() {
        let e = StatsError::InvalidProbability {
            name: "confidence",
            value: 1.5,
        };
        let s = e.to_string();
        assert!(s.starts_with("parameter"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn check_probability_accepts_bounds() {
        assert!(check_probability("p", 0.0).is_ok());
        assert!(check_probability("p", 1.0).is_ok());
        assert!(check_probability("p", 0.5).is_ok());
    }

    #[test]
    fn check_probability_rejects_outside_and_nan() {
        assert!(check_probability("p", -0.1).is_err());
        assert!(check_probability("p", 1.1).is_err());
        assert!(check_probability("p", f64::NAN).is_err());
        assert!(check_probability("p", f64::INFINITY).is_err());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StatsError>();
    }
}
