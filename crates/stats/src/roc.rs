//! ROC analysis: how well do uncertainty estimates *rank* failures?
//!
//! The Brier score (and its decomposition) measures calibration and
//! resolution together; AUC isolates pure discrimination — whether failures
//! receive higher uncertainty than successes, regardless of the absolute
//! level. The experiment harness reports it as a supplementary diagnostic
//! for the Table I approaches.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// One operating point of a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold (classify as "failure" when score ≥ threshold).
    pub threshold: f64,
    /// True-positive rate at the threshold.
    pub tpr: f64,
    /// False-positive rate at the threshold.
    pub fpr: f64,
}

/// A ROC curve over `(score, is_positive)` samples; higher scores should
/// indicate positives (here: higher uncertainty should indicate failures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RocCurve {
    /// Points ordered by decreasing threshold, starting at `(0, 0)` and
    /// ending at `(1, 1)`.
    pub points: Vec<RocPoint>,
    n_positive: usize,
    n_negative: usize,
}

impl RocCurve {
    /// Builds the curve from scores and labels.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] on empty or mismatched inputs, non-finite
    /// scores, or single-class labels (AUC is undefined then).
    pub fn from_scores(scores: &[f64], positives: &[bool]) -> Result<Self, StatsError> {
        if scores.is_empty() {
            return Err(StatsError::EmptyInput { name: "scores" });
        }
        if scores.len() != positives.len() {
            return Err(StatsError::LengthMismatch {
                left: scores.len(),
                right: positives.len(),
            });
        }
        if scores.iter().any(|s| !s.is_finite()) {
            return Err(StatsError::InvalidArgument {
                reason: "scores must be finite",
            });
        }
        let n_positive = positives.iter().filter(|&&p| p).count();
        let n_negative = positives.len() - n_positive;
        if n_positive == 0 || n_negative == 0 {
            return Err(StatsError::InvalidArgument {
                reason: "ROC needs both positive and negative samples",
            });
        }
        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            tpr: 0.0,
            fpr: 0.0,
        }];
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0;
        while i < order.len() {
            let threshold = scores[order[i]];
            // Consume the whole tie group before emitting a point.
            while i < order.len() && scores[order[i]] == threshold {
                if positives[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold,
                tpr: tp as f64 / n_positive as f64,
                fpr: fp as f64 / n_negative as f64,
            });
        }
        Ok(RocCurve {
            points,
            n_positive,
            n_negative,
        })
    }

    /// Area under the curve via the trapezoidal rule (equals the
    /// Mann–Whitney U statistic with tie correction).
    pub fn auc(&self) -> f64 {
        let mut area = 0.0;
        for w in self.points.windows(2) {
            area += (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0;
        }
        area
    }

    /// Number of positive samples.
    pub fn n_positive(&self) -> usize {
        self.n_positive
    }

    /// Number of negative samples.
    pub fn n_negative(&self) -> usize {
        self.n_negative
    }
}

/// AUC without materializing the curve.
///
/// # Errors
///
/// Same conditions as [`RocCurve::from_scores`].
///
/// # Examples
///
/// ```
/// use tauw_stats::roc::auc;
///
/// // Perfect ranking: all failures scored above all successes.
/// let scores = [0.9, 0.8, 0.2, 0.1];
/// let failed = [true, true, false, false];
/// assert!((auc(&scores, &failed)? - 1.0).abs() < 1e-12);
/// # Ok::<(), tauw_stats::StatsError>(())
/// ```
pub fn auc(scores: &[f64], positives: &[bool]) -> Result<f64, StatsError> {
    Ok(RocCurve::from_scores(scores, positives)?.auc())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        let scores = [0.9, 0.8, 0.7, 0.2, 0.1];
        let y = [true, true, true, false, false];
        assert!((auc(&scores, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_has_auc_zero() {
        let scores = [0.1, 0.2, 0.9];
        let y = [true, true, false];
        assert!(auc(&scores, &y).unwrap() < 1e-12);
    }

    #[test]
    fn random_interleaving_is_half() {
        // Alternating scores with alternating labels: AUC = 0.5 by symmetry.
        let scores: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let y: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let v = auc(&scores, &y).unwrap();
        assert!((v - 0.5).abs() < 0.02, "AUC {v}");
    }

    #[test]
    fn ties_are_handled_with_trapezoid() {
        // All scores equal: AUC must be exactly 0.5.
        let scores = [0.3; 10];
        let y = [
            true, false, true, false, true, false, true, false, true, false,
        ];
        assert!((auc(&scores, &y).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_endpoints_are_corners() {
        let scores = [0.4, 0.1, 0.8, 0.6];
        let y = [false, false, true, true];
        let curve = RocCurve::from_scores(&scores, &y).unwrap();
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert_eq!((first.tpr, first.fpr), (0.0, 0.0));
        assert_eq!((last.tpr, last.fpr), (1.0, 1.0));
        assert_eq!(curve.n_positive(), 2);
        assert_eq!(curve.n_negative(), 2);
    }

    #[test]
    fn curve_is_monotone() {
        let scores = [0.1, 0.5, 0.5, 0.9, 0.3, 0.7];
        let y = [false, true, false, true, false, true];
        let curve = RocCurve::from_scores(&scores, &y).unwrap();
        for w in curve.points.windows(2) {
            assert!(w[1].tpr >= w[0].tpr);
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].threshold <= w[0].threshold);
        }
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(auc(&[], &[]).is_err());
        assert!(auc(&[0.5], &[true]).is_err(), "single class");
        assert!(auc(&[0.5, 0.6], &[false, false]).is_err());
        assert!(auc(&[0.5], &[true, false]).is_err());
        assert!(auc(&[f64::NAN, 0.5], &[true, false]).is_err());
    }
}
