//! Brier score and its Murphy decomposition.
//!
//! The paper evaluates uncertainty estimators with the Brier score `bs` and
//! its decomposition `bs = var − res + unrel` (Murphy 1973), where
//!
//! * `var` ("variance", Murphy's *uncertainty* term) depends only on the
//!   overall failure rate of the wrapped model,
//! * `res` (resolution) rewards estimates that separate high- and low-risk
//!   situations, reported via `unspecificity = var − res` (lower is better),
//! * `unrel` (unreliability, Murphy's *reliability* term) punishes
//!   miscalibration.
//!
//! In addition the paper splits `unrel` into an **overconfidence** part
//! (groups whose estimated uncertainty *underestimates* the observed failure
//! rate — the safety-critical direction) and the residual underconfidence.

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// How forecasts are grouped for the decomposition.
///
/// Murphy's identity `bs = var − res + unrel` holds exactly when every
/// member of a group shares the same forecast value, which is the case for
/// tree-based wrappers (finitely many leaf bounds). For continuous forecasts
/// (e.g. products of uncertainties in naïve fusion) binning is required and
/// a small within-group residual appears; it is reported in
/// [`BrierDecomposition::within_group_residual`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Grouping {
    /// Group samples whose forecasts are equal after snapping to a tolerance
    /// grid (`tolerance` ≥ 0; `0.0` groups exact duplicates only).
    UniqueValues {
        /// Forecasts closer than this are considered identical.
        tolerance: f64,
    },
    /// Fixed number of equal-width bins over `[0, 1]`.
    EqualWidthBins(usize),
    /// Fixed number of equal-population (quantile) bins.
    QuantileBins(usize),
}

impl Default for Grouping {
    fn default() -> Self {
        Grouping::UniqueValues { tolerance: 1e-9 }
    }
}

/// Result of [`BrierDecomposition::compute`].
///
/// Field names follow the paper's Table I. All values are non-negative
/// except that floating-point noise may produce values within ~1e-15 of
/// zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrierDecomposition {
    /// Mean squared error between forecast failure probability and the
    /// 0/1 failure indicator.
    pub brier: f64,
    /// Murphy's uncertainty term `ȳ (1 − ȳ)`; depends only on the model's
    /// failure rate, not on the uncertainty estimator.
    pub variance: f64,
    /// Murphy's resolution term (higher is better, bounded by `variance`).
    pub resolution: f64,
    /// `variance − resolution` (lower is better); the paper's headline
    /// specificity measure.
    pub unspecificity: f64,
    /// Murphy's reliability term (lower is better): weighted squared gap
    /// between group forecast and group failure rate.
    pub unreliability: f64,
    /// Portion of `unreliability` from groups where the forecast
    /// *underestimates* the observed failure rate (overconfident groups).
    pub overconfidence: f64,
    /// Portion of `unreliability` from groups where the forecast
    /// overestimates the observed failure rate.
    pub underconfidence: f64,
    /// Number of forecast groups used.
    pub n_groups: usize,
    /// `bs − (var − res + unrel)`; exactly zero (up to FP noise) for
    /// [`Grouping::UniqueValues`], small for binned groupings.
    pub within_group_residual: f64,
    /// Number of samples scored.
    pub n_samples: usize,
}

impl BrierDecomposition {
    /// Computes the Brier score and its decomposition.
    ///
    /// `forecasts[i]` is the predicted probability of the failure event for
    /// sample `i`; `failures[i]` is whether the failure actually occurred.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError`] if the slices are empty, have mismatched
    /// lengths, or any forecast is not a probability.
    ///
    /// # Examples
    ///
    /// ```
    /// use tauw_stats::brier::{BrierDecomposition, Grouping};
    ///
    /// let forecasts = [0.1, 0.1, 0.9, 0.9];
    /// let failures = [false, false, true, true];
    /// let d = BrierDecomposition::compute(&forecasts, &failures, Grouping::default())?;
    /// assert!((d.brier - 0.01).abs() < 1e-12);
    /// assert!(d.unreliability < 0.011); // groups are miscalibrated by 0.1 each
    /// # Ok::<(), tauw_stats::StatsError>(())
    /// ```
    pub fn compute(
        forecasts: &[f64],
        failures: &[bool],
        grouping: Grouping,
    ) -> Result<Self, StatsError> {
        if forecasts.is_empty() {
            return Err(StatsError::EmptyInput { name: "forecasts" });
        }
        if forecasts.len() != failures.len() {
            return Err(StatsError::LengthMismatch {
                left: forecasts.len(),
                right: failures.len(),
            });
        }
        for &f in forecasts {
            crate::error::check_probability("forecast", f)?;
        }

        let n = forecasts.len();
        let n_f = n as f64;
        let base_rate = failures.iter().filter(|&&y| y).count() as f64 / n_f;
        let variance = base_rate * (1.0 - base_rate);

        let brier = forecasts
            .iter()
            .zip(failures)
            .map(|(&f, &y)| {
                let o = if y { 1.0 } else { 0.0 };
                (f - o) * (f - o)
            })
            .sum::<f64>()
            / n_f;

        let groups = group_indices(forecasts, grouping)?;
        let mut resolution = 0.0;
        let mut unreliability = 0.0;
        let mut overconfidence = 0.0;
        let n_groups = groups.len();
        for idx in &groups {
            let w = idx.len() as f64 / n_f;
            let mean_forecast = idx.iter().map(|&i| forecasts[i]).sum::<f64>() / idx.len() as f64;
            let obs_rate = idx.iter().filter(|&&i| failures[i]).count() as f64 / idx.len() as f64;
            resolution += w * (obs_rate - base_rate) * (obs_rate - base_rate);
            let gap = mean_forecast - obs_rate;
            let rel = w * gap * gap;
            unreliability += rel;
            if mean_forecast < obs_rate {
                overconfidence += rel;
            }
        }
        let unspecificity = variance - resolution;
        let within_group_residual = brier - (variance - resolution + unreliability);
        Ok(BrierDecomposition {
            brier,
            variance,
            resolution,
            unspecificity,
            unreliability,
            overconfidence,
            underconfidence: unreliability - overconfidence,
            n_groups,
            within_group_residual,
            n_samples: n,
        })
    }
}

/// Plain Brier score without decomposition.
///
/// # Errors
///
/// Returns [`StatsError`] on empty or mismatched inputs or non-probability
/// forecasts.
pub fn brier_score(forecasts: &[f64], failures: &[bool]) -> Result<f64, StatsError> {
    if forecasts.is_empty() {
        return Err(StatsError::EmptyInput { name: "forecasts" });
    }
    if forecasts.len() != failures.len() {
        return Err(StatsError::LengthMismatch {
            left: forecasts.len(),
            right: failures.len(),
        });
    }
    let mut acc = 0.0;
    for (&f, &y) in forecasts.iter().zip(failures) {
        crate::error::check_probability("forecast", f)?;
        let o = if y { 1.0 } else { 0.0 };
        acc += (f - o) * (f - o);
    }
    Ok(acc / forecasts.len() as f64)
}

/// Partitions sample indices into forecast groups per the grouping strategy.
fn group_indices(forecasts: &[f64], grouping: Grouping) -> Result<Vec<Vec<usize>>, StatsError> {
    let n = forecasts.len();
    match grouping {
        Grouping::UniqueValues { tolerance } => {
            if tolerance < 0.0 || !tolerance.is_finite() {
                return Err(StatsError::InvalidArgument {
                    reason: "tolerance must be finite and non-negative",
                });
            }
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| forecasts[a].total_cmp(&forecasts[b]));
            let mut groups: Vec<Vec<usize>> = Vec::new();
            for i in order {
                match groups.last_mut() {
                    Some(g) if (forecasts[i] - forecasts[g[0]]).abs() <= tolerance => g.push(i),
                    _ => groups.push(vec![i]),
                }
            }
            Ok(groups)
        }
        Grouping::EqualWidthBins(bins) => {
            if bins == 0 {
                return Err(StatsError::InvalidArgument {
                    reason: "bin count must be positive",
                });
            }
            let mut groups = vec![Vec::new(); bins];
            for (i, &f) in forecasts.iter().enumerate() {
                let b = ((f * bins as f64) as usize).min(bins - 1);
                groups[b].push(i);
            }
            groups.retain(|g| !g.is_empty());
            Ok(groups)
        }
        Grouping::QuantileBins(bins) => {
            if bins == 0 {
                return Err(StatsError::InvalidArgument {
                    reason: "bin count must be positive",
                });
            }
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| forecasts[a].total_cmp(&forecasts[b]));
            let mut groups: Vec<Vec<usize>> = Vec::new();
            let per = n.div_ceil(bins);
            for chunk in order.chunks(per.max(1)) {
                groups.push(chunk.to_vec());
            }
            // Merge boundary ties so equal forecasts land in one group,
            // keeping the decomposition well defined.
            let mut merged: Vec<Vec<usize>> = Vec::new();
            for g in groups {
                match merged.last_mut() {
                    Some(last)
                        if forecasts[*last.last().expect("non-empty group")] == forecasts[g[0]] =>
                    {
                        last.extend(g);
                    }
                    _ => merged.push(g),
                }
            }
            Ok(merged)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn perfect_forecast_scores_zero() {
        let f = [0.0, 1.0, 0.0, 1.0];
        let y = [false, true, false, true];
        let d = BrierDecomposition::compute(&f, &y, Grouping::default()).unwrap();
        assert_close(d.brier, 0.0, 1e-15);
        assert_close(d.unreliability, 0.0, 1e-15);
        assert_close(d.resolution, d.variance, 1e-15);
        assert_close(d.unspecificity, 0.0, 1e-15);
    }

    #[test]
    fn constant_forecast_has_zero_resolution() {
        let f = [0.3; 10];
        let y = [
            true, false, false, true, false, false, false, false, false, true,
        ];
        let d = BrierDecomposition::compute(&f, &y, Grouping::default()).unwrap();
        assert_close(d.resolution, 0.0, 1e-15);
        assert_eq!(d.n_groups, 1);
        // bs = var + rel for a constant forecast.
        assert_close(d.brier, d.variance + d.unreliability, 1e-12);
    }

    #[test]
    fn murphy_identity_exact_for_unique_grouping() {
        let f = [0.1, 0.1, 0.25, 0.25, 0.25, 0.7, 0.7, 0.9];
        let y = [false, true, false, false, true, true, false, true];
        let d = BrierDecomposition::compute(&f, &y, Grouping::default()).unwrap();
        assert_close(d.within_group_residual, 0.0, 1e-12);
        assert_close(d.brier, d.variance - d.resolution + d.unreliability, 1e-12);
    }

    #[test]
    fn overconfidence_detects_underestimated_risk() {
        // Forecast says 1% failure; observed 50%: grossly overconfident.
        let f = [0.01; 8];
        let y = [true, false, true, false, true, false, true, false];
        let d = BrierDecomposition::compute(&f, &y, Grouping::default()).unwrap();
        assert!(d.overconfidence > 0.2);
        assert_close(d.underconfidence, 0.0, 1e-15);
    }

    #[test]
    fn underconfidence_detects_overestimated_risk() {
        let f = [0.9; 8];
        let y = [false; 8];
        let d = BrierDecomposition::compute(&f, &y, Grouping::default()).unwrap();
        assert_close(d.overconfidence, 0.0, 1e-15);
        assert!(d.underconfidence > 0.5);
    }

    #[test]
    fn overconfidence_plus_underconfidence_is_unreliability() {
        let f = [0.1, 0.1, 0.8, 0.8, 0.5, 0.5];
        let y = [true, true, false, false, true, false];
        let d = BrierDecomposition::compute(&f, &y, Grouping::default()).unwrap();
        assert_close(d.overconfidence + d.underconfidence, d.unreliability, 1e-14);
    }

    #[test]
    fn variance_is_estimator_invariant() {
        let y = [true, false, false, false, true, false, false, false];
        let d1 = BrierDecomposition::compute(&[0.2; 8], &y, Grouping::default()).unwrap();
        let d2 = BrierDecomposition::compute(
            &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
            &y,
            Grouping::default(),
        )
        .unwrap();
        assert_close(d1.variance, d2.variance, 1e-15);
        assert_close(d1.variance, 0.25 * 0.75, 1e-15);
    }

    #[test]
    fn tolerance_merges_near_duplicates() {
        let f = [0.5, 0.5 + 1e-12, 0.9];
        let y = [true, false, true];
        let d = BrierDecomposition::compute(&f, &y, Grouping::UniqueValues { tolerance: 1e-9 })
            .unwrap();
        assert_eq!(d.n_groups, 2);
    }

    #[test]
    fn equal_width_bins_group_continuous_forecasts() {
        let f: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let y: Vec<bool> = (0..100).map(|i| i % 3 == 0).collect();
        let d = BrierDecomposition::compute(&f, &y, Grouping::EqualWidthBins(10)).unwrap();
        assert_eq!(d.n_groups, 10);
        // Identity holds only approximately for bins.
        assert!(d.within_group_residual.abs() < 0.01);
    }

    #[test]
    fn quantile_bins_equalize_population() {
        let f: Vec<f64> = (0..1000).map(|i| (i as f64 / 1000.0).powi(3)).collect();
        let y = vec![false; 1000];
        let d = BrierDecomposition::compute(&f, &y, Grouping::QuantileBins(10)).unwrap();
        assert_eq!(d.n_groups, 10);
    }

    #[test]
    fn quantile_bins_merge_ties() {
        let mut f = vec![0.0; 500];
        f.extend(vec![1.0; 500]);
        let y = vec![false; 1000];
        let d = BrierDecomposition::compute(&f, &y, Grouping::QuantileBins(10)).unwrap();
        assert_eq!(
            d.n_groups, 2,
            "tied forecasts must not be split across groups"
        );
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(BrierDecomposition::compute(&[], &[], Grouping::default()).is_err());
        assert!(BrierDecomposition::compute(&[0.5], &[], Grouping::default()).is_err());
        assert!(BrierDecomposition::compute(&[1.5], &[true], Grouping::default()).is_err());
        assert!(BrierDecomposition::compute(&[0.5], &[true], Grouping::EqualWidthBins(0)).is_err());
        assert!(brier_score(&[f64::NAN], &[true]).is_err());
    }

    #[test]
    fn brier_score_matches_decomposition() {
        let f = [0.2, 0.4, 0.9, 0.05];
        let y = [false, true, true, false];
        let plain = brier_score(&f, &y).unwrap();
        let d = BrierDecomposition::compute(&f, &y, Grouping::default()).unwrap();
        assert_close(plain, d.brier, 1e-15);
    }
}
