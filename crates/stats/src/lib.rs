//! # tauw-stats
//!
//! Statistical substrate for the timeseries-aware uncertainty wrapper (taUW)
//! reproduction. Everything here is implemented from scratch on top of `std`
//! because the Rust ecosystem's statistics crates are thin and the paper's
//! guarantees hinge on the exact semantics of these routines:
//!
//! * [`special`] — log-gamma, regularized incomplete beta/gamma, error
//!   function and the normal distribution, all accurate to ~1e-12 in the
//!   ranges used by the bounds below.
//! * [`binomial`] — one-sided binomial confidence bounds (Clopper–Pearson,
//!   Wilson, Jeffreys, Hoeffding). These produce the "dependable" per-leaf
//!   uncertainty guarantees of the uncertainty wrapper.
//! * [`brier`] — Brier score and its Murphy decomposition into
//!   variance/resolution/reliability, plus the paper's *unspecificity* and
//!   *overconfidence* derived metrics (Table I of the paper).
//! * [`calibration`] — quantile-binned calibration curves (Fig. 6 of the
//!   paper), expected/maximum calibration error.
//! * [`descriptive`] — streaming moments, quantiles, histograms.
//! * [`bootstrap`] — percentile bootstrap confidence intervals with a
//!   dependency-free deterministic PRNG.
//! * [`roc`] — ROC curves and AUC: pure discrimination diagnostics for
//!   uncertainty estimates.
//!
//! ## Quickstart
//!
//! ```
//! use tauw_stats::binomial::{BoundMethod, upper_bound};
//!
//! // 3 failures observed in 500 samples: what failure probability can be
//! // guaranteed not to be exceeded with 99.9% confidence?
//! let u = upper_bound(BoundMethod::ClopperPearson, 3, 500, 0.999).unwrap();
//! assert!(u > 3.0 / 500.0 && u < 0.05);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod binomial;
pub mod bootstrap;
pub mod brier;
pub mod calibration;
pub mod descriptive;
pub mod error;
pub mod roc;
pub mod special;

pub use binomial::{lower_bound, upper_bound, BoundMethod};
pub use brier::{BrierDecomposition, Grouping};
pub use calibration::{CalibrationCurve, CalibrationPoint};
pub use error::StatsError;
