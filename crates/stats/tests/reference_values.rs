//! Focused reference-value tests for `tauw_stats`: binomial bounds against
//! known Clopper–Pearson/Wilson values, and the Murphy identity for the
//! Brier decomposition.
//!
//! The anchors are external: closed-form zero-failure bounds, the published
//! 95% Clopper–Pearson and Wilson intervals for 10/100, and the CDF
//! inversion identity that *defines* the Clopper–Pearson bound. If the
//! special-function implementations drift, these fail before any wrapper
//! calibration silently degrades.

use tauw_stats::binomial::{binomial_cdf, lower_bound, upper_bound, BoundMethod};
use tauw_stats::brier::{brier_score, BrierDecomposition, Grouping};

const CONFIDENCES: [f64; 3] = [0.9, 0.975, 0.999];

/// Closed form for the zero-failure Clopper–Pearson upper bound:
/// `(1 − p)ⁿ = α  ⇒  p = 1 − α^(1/n)`.
#[test]
fn clopper_pearson_zero_failures_matches_closed_form() {
    for n in [10u64, 100, 959, 5000] {
        for confidence in CONFIDENCES {
            let alpha = 1.0 - confidence;
            let expected = 1.0 - alpha.powf(1.0 / n as f64);
            let got = upper_bound(BoundMethod::ClopperPearson, 0, n, confidence).unwrap();
            assert!(
                (got - expected).abs() < 1e-6,
                "n={n} c={confidence}: got {got}, expected {expected}"
            );
        }
    }
    // The paper's headline leaf: 0 failures in 959 samples at 99.9%
    // confidence gives the "lowest guaranteed uncertainty" of ~0.72%.
    let u = upper_bound(BoundMethod::ClopperPearson, 0, 959, 0.999).unwrap();
    assert!((u - 0.007177).abs() < 1e-5, "{u}");
}

/// Published 95% Clopper–Pearson interval for 10 events in 100 trials:
/// (0.04900, 0.17622). One-sided bounds at 97.5% confidence reproduce the
/// two-sided endpoints.
#[test]
fn clopper_pearson_reference_interval_10_of_100() {
    let up = upper_bound(BoundMethod::ClopperPearson, 10, 100, 0.975).unwrap();
    let lo = lower_bound(BoundMethod::ClopperPearson, 10, 100, 0.975).unwrap();
    assert!((up - 0.17622).abs() < 2e-4, "upper {up}");
    assert!((lo - 0.04900).abs() < 2e-4, "lower {lo}");
}

/// Published 95% Wilson score interval for 10 events in 100 trials:
/// (0.05523, 0.17437).
#[test]
fn wilson_reference_interval_10_of_100() {
    let up = upper_bound(BoundMethod::Wilson, 10, 100, 0.975).unwrap();
    let lo = lower_bound(BoundMethod::Wilson, 10, 100, 0.975).unwrap();
    assert!((up - 0.17437).abs() < 2e-4, "upper {up}");
    assert!((lo - 0.05523).abs() < 2e-4, "lower {lo}");
}

/// The Clopper–Pearson upper bound is *defined* by CDF inversion:
/// `P(X ≤ k; n, p_upper) = α`. Checks the bound against the crate's own
/// exact binomial CDF on a grid of leaf shapes.
#[test]
fn clopper_pearson_inverts_the_binomial_cdf() {
    for (k, n) in [(0u64, 50u64), (1, 50), (3, 500), (40, 1200), (17, 100)] {
        for confidence in CONFIDENCES {
            let alpha = 1.0 - confidence;
            let p_upper = upper_bound(BoundMethod::ClopperPearson, k, n, confidence).unwrap();
            let cdf = binomial_cdf(k, n, p_upper).unwrap();
            assert!(
                (cdf - alpha).abs() < 1e-6,
                "k={k} n={n} c={confidence}: CDF at bound {cdf}, expected {alpha}"
            );
        }
    }
}

/// Hoeffding's bound has an exact closed form; the implementation must
/// match it to machine precision (after clamping into [0, 1]).
#[test]
fn hoeffding_matches_closed_form() {
    for (k, n) in [(0u64, 100u64), (5, 100), (180, 200)] {
        for confidence in CONFIDENCES {
            let alpha = 1.0 - confidence;
            let expected =
                (k as f64 / n as f64 + ((1.0 / alpha).ln() / (2.0 * n as f64)).sqrt()).min(1.0);
            let got = upper_bound(BoundMethod::Hoeffding, k, n, confidence).unwrap();
            assert!(
                (got - expected).abs() < 1e-12,
                "k={k} n={n}: {got} vs {expected}"
            );
        }
    }
}

/// Conservativeness ordering at high confidence: Jeffreys is less
/// conservative than Clopper–Pearson, Hoeffding is the loosest of the
/// distribution-dependent trio for moderate rates.
#[test]
fn method_conservativeness_ordering() {
    for (k, n) in [(0u64, 200u64), (2, 200), (10, 100), (40, 1200)] {
        let cp = upper_bound(BoundMethod::ClopperPearson, k, n, 0.999).unwrap();
        let jeffreys = upper_bound(BoundMethod::Jeffreys, k, n, 0.999).unwrap();
        assert!(
            jeffreys <= cp + 1e-12,
            "k={k} n={n}: jeffreys {jeffreys} > cp {cp}"
        );
    }
}

/// Murphy identity on a hand-computed example:
/// forecasts (0.25, 0.25, 0.75, 0.75), outcomes (no, yes, yes, yes).
#[test]
fn brier_decomposition_hand_computed_example() {
    let forecasts = [0.25, 0.25, 0.75, 0.75];
    let failures = [false, true, true, true];
    let d = BrierDecomposition::compute(
        &forecasts,
        &failures,
        Grouping::UniqueValues { tolerance: 0.0 },
    )
    .unwrap();
    assert!((d.brier - 0.1875).abs() < 1e-12);
    assert!((d.variance - 0.1875).abs() < 1e-12);
    assert!((d.resolution - 0.0625).abs() < 1e-12);
    assert!((d.unreliability - 0.0625).abs() < 1e-12);
    // Both groups underestimate their observed failure rate.
    assert!((d.overconfidence - 0.0625).abs() < 1e-12);
    assert!(d.underconfidence.abs() < 1e-12);
    assert!((d.unspecificity - (d.variance - d.resolution)).abs() < 1e-12);
}

/// Murphy identity `bs = var − res + unrel` holds exactly (up to FP noise)
/// under exact-value grouping, on deterministic pseudo-random data.
#[test]
fn brier_decomposition_murphy_identity() {
    // Deterministic LCG so the test needs no RNG dependency.
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let levels = [0.02, 0.1, 0.35, 0.5, 0.8];
    let mut forecasts = Vec::new();
    let mut failures = Vec::new();
    for _ in 0..500 {
        let f = levels[(next() * levels.len() as f64) as usize % levels.len()];
        forecasts.push(f);
        failures.push(next() < f);
    }
    let d = BrierDecomposition::compute(
        &forecasts,
        &failures,
        Grouping::UniqueValues { tolerance: 0.0 },
    )
    .unwrap();
    let reconstructed = d.variance - d.resolution + d.unreliability;
    assert!(
        (d.brier - reconstructed).abs() < 1e-12,
        "bs {} vs var − res + unrel {}",
        d.brier,
        reconstructed
    );
    assert!(d.within_group_residual.abs() < 1e-12);
    assert!((d.overconfidence + d.underconfidence - d.unreliability).abs() < 1e-12);
    let plain = brier_score(&forecasts, &failures).unwrap();
    assert!((plain - d.brier).abs() < 1e-12);
    assert_eq!(d.n_samples, 500);
    assert_eq!(d.n_groups, levels.len());
}

/// AUC on a 4-point example small enough to enumerate by hand.
///
/// Scores (uncertainties) 0.8, 0.6, 0.4, 0.2 with failure labels
/// T, F, T, F give four (positive, negative) pairs:
/// (0.8 > 0.6) ✓, (0.8 > 0.2) ✓, (0.4 < 0.6) ✗, (0.4 > 0.2) ✓ —
/// i.e. the Mann–Whitney statistic is 3/4.
#[test]
fn roc_auc_matches_hand_computed_four_point_example() {
    use tauw_stats::roc::{auc, RocCurve};
    let scores = [0.8, 0.6, 0.4, 0.2];
    let failed = [true, false, true, false];
    let got = auc(&scores, &failed).unwrap();
    assert!((got - 0.75).abs() < 1e-12, "AUC {got}, expected 0.75");

    // The curve itself: thresholds descend 0.8, 0.6, 0.4, 0.2 producing
    // (fpr, tpr) = (0,0) → (0,0.5) → (0.5,0.5) → (0.5,1) → (1,1).
    let curve = RocCurve::from_scores(&scores, &failed).unwrap();
    let pts: Vec<(f64, f64)> = curve.points.iter().map(|p| (p.fpr, p.tpr)).collect();
    assert_eq!(
        pts,
        vec![(0.0, 0.0), (0.0, 0.5), (0.5, 0.5), (0.5, 1.0), (1.0, 1.0)]
    );
    assert_eq!(curve.n_positive(), 2);
    assert_eq!(curve.n_negative(), 2);
}

/// Tied scores across classes count half a pair each (trapezoidal rule):
/// positives {0.5, 0.5}, negatives {0.5, 0.1} → pairs
/// (0.5 vs 0.5) ½, (0.5 vs 0.1) 1, twice ⇒ AUC = (½ + 1 + ½ + 1)/4 = 0.75.
#[test]
fn roc_auc_handles_cross_class_ties_as_half_wins() {
    use tauw_stats::roc::auc;
    let scores = [0.5, 0.5, 0.5, 0.1];
    let failed = [true, true, false, false];
    let got = auc(&scores, &failed).unwrap();
    assert!((got - 0.75).abs() < 1e-12, "AUC {got}, expected 0.75");

    // All-tied degenerates to chance level exactly.
    let flat = auc(&[0.3; 6], &[true, false, true, false, true, false]).unwrap();
    assert!((flat - 0.5).abs() < 1e-12);
}

/// Full hand-computed Murphy decomposition: forecasts 0.2, 0.2, 0.6, 0.6
/// against failures F, T, T, T.
///
/// * base rate ȳ = 3/4, variance = 3/16 = 0.1875
/// * group 0.2 observes rate 1/2, group 0.6 observes rate 1
/// * resolution = ½(½−¾)² + ½(1−¾)² = 0.0625
/// * unreliability = ½(0.2−0.5)² + ½(0.6−1)² = 0.045 + 0.08 = 0.125
/// * Brier = var − res + unrel = 0.1875 − 0.0625 + 0.125 = **0.25**,
///   matching the direct mean of squared errors (0.04+0.64+0.16+0.16)/4.
#[test]
fn brier_decomposition_sums_to_total_on_hand_computed_example() {
    let forecasts = [0.2, 0.2, 0.6, 0.6];
    let failures = [false, true, true, true];
    let d = BrierDecomposition::compute(
        &forecasts,
        &failures,
        Grouping::UniqueValues { tolerance: 0.0 },
    )
    .unwrap();
    assert!((d.brier - 0.25).abs() < 1e-12);
    assert!((d.variance - 0.1875).abs() < 1e-12);
    assert!((d.resolution - 0.0625).abs() < 1e-12);
    assert!((d.unreliability - 0.125).abs() < 1e-12);
    assert!((d.brier - (d.variance - d.resolution + d.unreliability)).abs() < 1e-12);
    assert!(d.within_group_residual.abs() < 1e-12);
    // Both groups underestimate their observed failure rate: the entire
    // unreliability is overconfidence, none underconfidence.
    assert!((d.overconfidence - 0.125).abs() < 1e-12);
    assert!(d.underconfidence.abs() < 1e-12);
    let plain = brier_score(&forecasts, &failures).unwrap();
    assert!((plain - d.brier).abs() < 1e-15);
    assert_eq!(d.n_groups, 2);
}
