//! Uncertainty fusion baselines (paper Section II, equations 1–3).
//!
//! Given the per-step uncertainties `u_0..=u_i` of a timeseries, these
//! rules produce a joint uncertainty for the fused outcome:
//!
//! * **naïve** — `∏ u_j`, valid only under independence (which DDM errors
//!   violate badly; the paper shows it is strongly overconfident),
//! * **opportune** — `min u_j`, valid only if the per-step estimates are
//!   never overconfident,
//! * **worst-case** — `max u_j`, always dependable but overly conservative.

use serde::{Deserialize, Serialize};

/// An uncertainty-fusion rule over per-step uncertainty estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UncertaintyFusion {
    /// Product of uncertainties (assumes independent failures), eq. (1).
    Naive,
    /// Minimum uncertainty over the series, eq. (2).
    Opportune,
    /// Maximum uncertainty over the series, eq. (3).
    WorstCase,
}

impl UncertaintyFusion {
    /// All rules, for sweeps.
    pub const ALL: [UncertaintyFusion; 3] = [
        UncertaintyFusion::Naive,
        UncertaintyFusion::Opportune,
        UncertaintyFusion::WorstCase,
    ];

    /// Short stable name for reports (matches the paper's terminology).
    pub fn name(self) -> &'static str {
        match self {
            UncertaintyFusion::Naive => "naive",
            UncertaintyFusion::Opportune => "opportune",
            UncertaintyFusion::WorstCase => "worst-case",
        }
    }

    /// Fuses the uncertainties observed so far; `None` on empty input.
    ///
    /// Inputs are clamped to `[0, 1]`; the result is always in `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use tauw_fusion::uncertainty::UncertaintyFusion;
    ///
    /// let u = [0.2, 0.1, 0.4];
    /// assert!((UncertaintyFusion::Naive.fuse(&u).unwrap() - 0.008).abs() < 1e-12);
    /// assert_eq!(UncertaintyFusion::Opportune.fuse(&u), Some(0.1));
    /// assert_eq!(UncertaintyFusion::WorstCase.fuse(&u), Some(0.4));
    /// ```
    pub fn fuse(self, uncertainties: &[f64]) -> Option<f64> {
        if uncertainties.is_empty() {
            return None;
        }
        let clamped = uncertainties.iter().map(|u| u.clamp(0.0, 1.0));
        Some(match self {
            UncertaintyFusion::Naive => clamped.product(),
            UncertaintyFusion::Opportune => clamped.fold(1.0, f64::min),
            UncertaintyFusion::WorstCase => clamped.fold(0.0, f64::max),
        })
    }
}

impl std::fmt::Display for UncertaintyFusion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_estimate_passes_through_for_all_rules() {
        for rule in UncertaintyFusion::ALL {
            assert_eq!(rule.fuse(&[0.37]), Some(0.37));
        }
    }

    #[test]
    fn empty_input_yields_none() {
        for rule in UncertaintyFusion::ALL {
            assert_eq!(rule.fuse(&[]), None);
        }
    }

    #[test]
    fn naive_shrinks_fast() {
        let u = vec![0.1; 10];
        let fused = UncertaintyFusion::Naive.fuse(&u).unwrap();
        assert!((fused - 1e-10).abs() < 1e-20);
    }

    #[test]
    fn ordering_naive_le_opportune_le_worst_case() {
        // For uncertainties in [0,1]: ∏u ≤ min u ≤ max u.
        let cases: [&[f64]; 4] = [
            &[0.5, 0.5],
            &[0.9, 0.1, 0.3],
            &[0.01, 0.02, 0.9, 0.5],
            &[1.0, 1.0],
        ];
        for u in cases {
            let n = UncertaintyFusion::Naive.fuse(u).unwrap();
            let o = UncertaintyFusion::Opportune.fuse(u).unwrap();
            let w = UncertaintyFusion::WorstCase.fuse(u).unwrap();
            assert!(n <= o + 1e-15, "naive {n} > opportune {o} for {u:?}");
            assert!(o <= w + 1e-15, "opportune {o} > worst {w} for {u:?}");
        }
    }

    #[test]
    fn results_stay_probabilities_even_with_dirty_inputs() {
        for rule in UncertaintyFusion::ALL {
            let fused = rule.fuse(&[1.7, -0.3, 0.5]).unwrap();
            assert!((0.0..=1.0).contains(&fused), "{rule}: {fused}");
        }
    }

    #[test]
    fn worst_case_is_monotone_in_series_length() {
        let mut u = vec![0.1];
        let mut prev = UncertaintyFusion::WorstCase.fuse(&u).unwrap();
        for step in 2..10 {
            u.push(0.05 * step as f64);
            let next = UncertaintyFusion::WorstCase.fuse(&u).unwrap();
            assert!(next >= prev);
            prev = next;
        }
    }

    #[test]
    fn opportune_is_antitone_in_series_length() {
        let mut u = vec![0.9];
        let mut prev = UncertaintyFusion::Opportune.fuse(&u).unwrap();
        for step in 2..10 {
            u.push(0.9 / step as f64);
            let next = UncertaintyFusion::Opportune.fuse(&u).unwrap();
            assert!(next <= prev);
            prev = next;
        }
    }

    #[test]
    fn names_match_paper_terms() {
        assert_eq!(UncertaintyFusion::Naive.to_string(), "naive");
        assert_eq!(UncertaintyFusion::Opportune.to_string(), "opportune");
        assert_eq!(UncertaintyFusion::WorstCase.to_string(), "worst-case");
    }
}
