//! # tauw-fusion
//!
//! Information fusion and uncertainty fusion for timeseries of classifier
//! outcomes, as used and compared in the taUW paper:
//!
//! * [`info`] — fusing *outcomes*: majority voting with most-recent
//!   tie-breaking (the paper's IF approach), certainty-weighted voting and
//!   a latest-only baseline.
//! * [`uncertainty`] — fusing *uncertainties*: the naïve (product),
//!   opportune (min) and worst-case (max) rules the taUW is evaluated
//!   against in Table I and Fig. 6.
//!
//! ## Quickstart
//!
//! ```
//! use tauw_fusion::{info::majority_vote, uncertainty::UncertaintyFusion};
//!
//! let outcomes = [2u32, 2, 5, 2];
//! assert_eq!(majority_vote(&outcomes), Some(2));
//!
//! let uncertainties = [0.02, 0.3, 0.01, 0.02];
//! let worst = UncertaintyFusion::WorstCase.fuse(&uncertainties).unwrap();
//! assert_eq!(worst, 0.3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod info;
pub mod uncertainty;

pub use info::{
    majority_vote, CertaintyWeightedVote, InformationFusion, LatestOnly, MajorityVote,
    WindowedMajorityVote,
};
pub use uncertainty::UncertaintyFusion;
