//! Information fusion over successive classification outcomes.
//!
//! The paper fuses the DDM outcomes of a timeseries with **majority
//! voting**, resolving ties in favour of the *most recent* outcome
//! (Section IV-C.3). Variants used by the ablation benches are provided
//! alongside.

/// A strategy for fusing the outcomes `o_0..=o_i` observed so far into one
/// fused outcome `o_i^(if)`.
///
/// `certainties[j]` is the certainty `1 − u_j` attached to outcome `j` by
/// the per-step uncertainty estimator; strategies that do not use
/// certainties ignore the slice (it must still be of equal length).
pub trait InformationFusion<T: PartialEq + Copy> {
    /// Short stable name for reports.
    fn name(&self) -> &'static str;

    /// Fuses the outcomes; returns `None` for empty input or mismatched
    /// slice lengths.
    fn fuse(&self, outcomes: &[T], certainties: &[f64]) -> Option<T>;
}

/// Majority voting with most-recent tie-breaking (the paper's approach:
/// "the mode of the number of momentaneous predictions per class is chosen
/// ... to resolve ties, the most recent momentaneous prediction is chosen").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MajorityVote;

impl<T: PartialEq + Copy> InformationFusion<T> for MajorityVote {
    fn name(&self) -> &'static str {
        "majority-vote"
    }

    fn fuse(&self, outcomes: &[T], certainties: &[f64]) -> Option<T> {
        if outcomes.is_empty() || outcomes.len() != certainties.len() {
            return None;
        }
        Some(vote(outcomes, |_| 1.0))
    }
}

/// Certainty-weighted voting: each outcome votes with weight `1 − u_j`,
/// ties again broken by recency. Reduces to majority voting when all
/// certainties are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CertaintyWeightedVote;

impl<T: PartialEq + Copy> InformationFusion<T> for CertaintyWeightedVote {
    fn name(&self) -> &'static str {
        "certainty-weighted-vote"
    }

    fn fuse(&self, outcomes: &[T], certainties: &[f64]) -> Option<T> {
        if outcomes.is_empty() || outcomes.len() != certainties.len() {
            return None;
        }
        Some(vote(outcomes, |j| certainties[j].max(0.0)))
    }
}

/// No fusion: always the latest outcome (the "isolated prediction"
/// baseline of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatestOnly;

impl<T: PartialEq + Copy> InformationFusion<T> for LatestOnly {
    fn name(&self) -> &'static str {
        "latest-only"
    }

    fn fuse(&self, outcomes: &[T], certainties: &[f64]) -> Option<T> {
        if outcomes.is_empty() || outcomes.len() != certainties.len() {
            return None;
        }
        outcomes.last().copied()
    }
}

/// Majority voting restricted to the most recent `window` outcomes: a
/// bounded-memory variant for very long series where stale evidence (e.g.
/// from before a lighting change) should age out. With `window >= series
/// length` it reduces to [`MajorityVote`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowedMajorityVote {
    /// Number of most recent outcomes considered (must be ≥ 1).
    pub window: usize,
}

impl WindowedMajorityVote {
    /// Creates a windowed vote over the last `window` outcomes.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        WindowedMajorityVote { window }
    }
}

impl<T: PartialEq + Copy> InformationFusion<T> for WindowedMajorityVote {
    fn name(&self) -> &'static str {
        "windowed-majority-vote"
    }

    fn fuse(&self, outcomes: &[T], certainties: &[f64]) -> Option<T> {
        if outcomes.is_empty() || outcomes.len() != certainties.len() {
            return None;
        }
        let start = outcomes.len().saturating_sub(self.window);
        Some(vote(&outcomes[start..], |_| 1.0))
    }
}

/// Weighted vote over the distinct values in `outcomes`; ties go to the
/// value whose *latest* occurrence is most recent.
fn vote<T: PartialEq + Copy>(outcomes: &[T], weight: impl Fn(usize) -> f64) -> T {
    // Distinct values with accumulated weight and last-seen index. The
    // number of distinct outcomes per series is tiny (≤ a handful), so a
    // linear scan beats hashing and needs no Hash/Ord bounds.
    let mut entries: Vec<(T, f64, usize)> = Vec::new();
    for (j, &o) in outcomes.iter().enumerate() {
        match entries.iter_mut().find(|(v, _, _)| *v == o) {
            Some(entry) => {
                entry.1 += weight(j);
                entry.2 = j;
            }
            None => entries.push((o, weight(j), j)),
        }
    }
    let mut best = entries[0];
    for &e in &entries[1..] {
        let wins = e.1 > best.1 + 1e-12 || ((e.1 - best.1).abs() <= 1e-12 && e.2 > best.2);
        if wins {
            best = e;
        }
    }
    best.0
}

/// Convenience free function: majority vote with most-recent tie-breaking
/// over plain outcomes.
///
/// # Examples
///
/// ```
/// use tauw_fusion::info::majority_vote;
///
/// assert_eq!(majority_vote(&[1, 2, 2, 1, 2]), Some(2));
/// // 1 and 2 are tied; the most recent of the tied classes wins.
/// assert_eq!(majority_vote(&[1, 2, 2, 1]), Some(1));
/// assert_eq!(majority_vote::<u32>(&[]), None);
/// ```
pub fn majority_vote<T: PartialEq + Copy>(outcomes: &[T]) -> Option<T> {
    if outcomes.is_empty() {
        return None;
    }
    Some(vote(outcomes, |_| 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ones(n: usize) -> Vec<f64> {
        vec![1.0; n]
    }

    #[test]
    fn majority_picks_the_mode() {
        let m = MajorityVote;
        assert_eq!(m.fuse(&[3u32, 3, 5, 3, 5], &ones(5)), Some(3));
        assert_eq!(m.fuse(&[7u32], &ones(1)), Some(7));
    }

    #[test]
    fn majority_tie_breaks_to_most_recent() {
        let m = MajorityVote;
        // 1 appears at indices {0, 3}, 2 at {1, 2}: tie, latest occurrence
        // of 1 (index 3) is more recent than of 2 (index 2).
        assert_eq!(m.fuse(&[1u32, 2, 2, 1], &ones(4)), Some(1));
        // Symmetric case.
        assert_eq!(m.fuse(&[2u32, 1, 1, 2], &ones(4)), Some(2));
        // Three-way tie: the class seen last wins.
        assert_eq!(m.fuse(&[1u32, 2, 3], &ones(3)), Some(3));
    }

    #[test]
    fn majority_rejects_empty_and_mismatched() {
        let m = MajorityVote;
        assert_eq!(m.fuse(&[] as &[u32], &[]), None);
        assert_eq!(m.fuse(&[1u32, 2], &ones(3)), None);
    }

    #[test]
    fn weighted_vote_respects_certainties() {
        let w = CertaintyWeightedVote;
        // Two votes for class 1 at low certainty lose to one confident vote
        // for class 2.
        assert_eq!(w.fuse(&[1u32, 1, 2], &[0.3, 0.3, 0.9]), Some(2));
        // With equal certainties it degenerates to majority voting.
        assert_eq!(w.fuse(&[1u32, 1, 2], &[0.5, 0.5, 0.5]), Some(1));
    }

    #[test]
    fn weighted_vote_tie_breaks_to_most_recent() {
        let w = CertaintyWeightedVote;
        assert_eq!(w.fuse(&[1u32, 2], &[0.5, 0.5]), Some(2));
    }

    #[test]
    fn latest_only_is_the_isolated_baseline() {
        let l = LatestOnly;
        assert_eq!(l.fuse(&[4u32, 5, 6], &ones(3)), Some(6));
        assert_eq!(l.fuse(&[] as &[u32], &[]), None);
    }

    #[test]
    fn free_function_matches_trait_object() {
        let outcomes = [9u32, 9, 1, 1, 1, 9];
        let m: &dyn InformationFusion<u32> = &MajorityVote;
        assert_eq!(majority_vote(&outcomes), m.fuse(&outcomes, &ones(6)));
    }

    #[test]
    fn fusion_is_prefix_stable() {
        // Fusing a growing prefix never panics and always returns a member
        // of the prefix.
        let outcomes = [1u32, 2, 2, 3, 2, 1, 1, 1];
        for i in 1..=outcomes.len() {
            let fused = majority_vote(&outcomes[..i]).unwrap();
            assert!(outcomes[..i].contains(&fused));
        }
    }

    #[test]
    fn works_with_non_integer_outcome_types() {
        #[derive(Debug, Clone, Copy, PartialEq)]
        enum Sign {
            Stop,
            Yield,
        }
        assert_eq!(
            majority_vote(&[Sign::Stop, Sign::Yield, Sign::Stop]),
            Some(Sign::Stop)
        );
    }

    #[test]
    fn windowed_vote_forgets_old_evidence() {
        let w = WindowedMajorityVote::new(3);
        // Full history favours 1 (4 vs 3); the last 3 outcomes favour 2.
        let outcomes = [1u32, 1, 1, 1, 2, 2, 2];
        assert_eq!(w.fuse(&outcomes, &ones(7)), Some(2));
        assert_eq!(majority_vote(&outcomes), Some(1));
    }

    #[test]
    fn windowed_vote_with_large_window_is_plain_majority() {
        let w = WindowedMajorityVote::new(100);
        let outcomes = [3u32, 3, 5, 3, 5];
        assert_eq!(w.fuse(&outcomes, &ones(5)), majority_vote(&outcomes));
    }

    #[test]
    fn windowed_vote_handles_short_series() {
        let w = WindowedMajorityVote::new(5);
        assert_eq!(w.fuse(&[7u32], &ones(1)), Some(7));
        assert_eq!(w.fuse(&[] as &[u32], &[]), None);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = WindowedMajorityVote::new(0);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            InformationFusion::<u32>::name(&MajorityVote),
            "majority-vote"
        );
        assert_eq!(InformationFusion::<u32>::name(&LatestOnly), "latest-only");
        assert_eq!(
            InformationFusion::<u32>::name(&CertaintyWeightedVote),
            "certainty-weighted-vote"
        );
    }
}
