//! Service-soak harness at arbitrary cohort scale: replays a simulated
//! stream cohort through the plain multi-stream engine and the sharded
//! front end, and writes a `BENCH_soak.json` report (bench schema v9:
//! steps/s throughput, p99 per-wave latency, bit-identity verdict). The
//! `--scenario` knob replays the cohort through one of the simulator's
//! workload families (dropout, regime switch, heavy tails, multi-source,
//! or the hash-partitioned mix) as a pure overlay on the hashed traffic.
//!
//! The CI soak-smoke job runs the scaled-down `--smoke` shape (2k streams
//! × 50 waves). The service-grade 1M-stream configuration documented in
//! `docs/ARCHITECTURE.md` is
//!
//! ```text
//! cargo run --release -p tauw-bench --bin soak -- \
//!     --streams 1000000 --waves 20 --shards 64 --out /tmp
//! ```
//!
//! Traffic is derived per `(stream, wave)` from a SplitMix64 hash, so the
//! 1M-stream cohort needs no stored series; memory is bounded by the
//! engines' sliding-window stream buffers (`tauw_bench::soak::BUFFER_WINDOW`
//! steps per stream).

use tauw_bench::report::{write_report, Comparison};
use tauw_bench::soak::{run, SoakConfig, SoakScenario};

#[derive(Debug, Clone)]
struct Options {
    out_dir: String,
    smoke: bool,
    config: SoakConfig,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            out_dir: ".".to_string(),
            smoke: false,
            config: SoakConfig {
                streams: 50_000,
                waves: 40,
                shards: 8,
                threads: parallel::max_threads(),
                seed: 0x50AC,
                scenario: SoakScenario::Uniform,
            },
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let count = |args: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        let v = args
            .next()
            .unwrap_or_else(|| usage(&format!("{flag} needs a value")));
        v.parse()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| usage(&format!("bad {flag} value: {v}")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => opts.out_dir = args.next().unwrap_or_else(|| usage("--out needs a value")),
            "--smoke" => {
                opts.smoke = true;
                opts.config.streams = 2_000;
                opts.config.waves = 50;
            }
            "--streams" => opts.config.streams = count(&mut args, "--streams"),
            "--waves" => opts.config.waves = count(&mut args, "--waves"),
            "--shards" => opts.config.shards = count(&mut args, "--shards"),
            "--threads" => opts.config.threads = count(&mut args, "--threads"),
            "--scenario" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--scenario needs a value"));
                opts.config.scenario = SoakScenario::from_name(&v)
                    .unwrap_or_else(|| usage(&format!("unknown scenario: {v}")));
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: soak [--out dir] [--streams n] [--waves n] [--shards k] [--threads n] \
         [--scenario uniform|dropout|regime_switch|heavy_tails|multi_source|mixed] [--smoke]"
    );
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    let cfg = opts.config;
    println!(
        "soak: streams={}, waves={}, shards={}, threads={}, scenario={}, smoke={}, \
         host parallelism={}",
        cfg.streams,
        cfg.waves,
        cfg.shards,
        cfg.threads,
        cfg.scenario.name(),
        opts.smoke,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    let outcome = run(&cfg);
    // The uniform cohort keeps the historical row name the regression
    // gate tracks; scenario cohorts get their own names so baselines for
    // different traffic shapes never alias.
    let row_name = match cfg.scenario {
        SoakScenario::Uniform => "soak_engine_vs_sharded".to_string(),
        other => format!("soak_scenario_{}", other.name()),
    };
    let row = Comparison::new(
        &row_name,
        outcome.steps,
        ("engine", outcome.engine.total_s),
        (&format!("sharded({})", cfg.shards), outcome.sharded.total_s),
        outcome.bit_identical,
    )
    .with_p99(outcome.engine.p99_wave_ms, outcome.sharded.p99_wave_ms);
    row.print();
    println!(
        "  fingerprint engine={:#018x} sharded={:#018x}",
        outcome.engine.fingerprint, outcome.sharded.fingerprint,
    );
    println!(
        "  engine   {:>12.0} steps/s, p99 wave {:.3} ms",
        outcome.steps as f64 / outcome.engine.total_s,
        outcome.engine.p99_wave_ms,
    );
    println!(
        "  sharded  {:>12.0} steps/s, p99 wave {:.3} ms",
        outcome.steps as f64 / outcome.sharded.total_s,
        outcome.sharded.p99_wave_ms,
    );
    if !outcome.bit_identical {
        eprintln!("soak: FAIL: sharded output diverged from the plain engine");
        std::process::exit(1);
    }
    write_report(
        &opts.out_dir,
        "BENCH_soak.json",
        "soak",
        opts.smoke,
        cfg.threads,
        1,
        vec![row],
    );
}
