//! Perf-trajectory baseline: times the parallel training and multi-stream
//! inference hot paths at a fixed scale and writes machine-readable
//! `BENCH_dtree.json` and `BENCH_pipeline.json` files (wall time +
//! throughput, serial vs parallel, bit-identity verdicts).
//!
//! The committed files at the repo root are the baseline; regenerate with
//!
//! ```text
//! cargo run --release -p tauw-bench --bin baseline -- --out .
//! ```
//!
//! `--smoke` runs a heavily scaled-down variant for CI schema validation.

use serde::Serialize;
use std::time::Instant;
use tauw_core::engine::TauwEngine;
use tauw_core::tauw::replay_with_threads;
use tauw_dtree::{Dataset, Splitter, TreeBuilder};
use tauw_experiments::ExperimentContext;
use tauw_stats::bootstrap::SplitMix64;

/// Schema tag so CI can detect malformed or stale baseline files.
const SCHEMA: &str = "tauw-bench-baseline/v1";

#[derive(Debug, Clone)]
struct Options {
    out_dir: String,
    smoke: bool,
    threads: usize,
    repetitions: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            out_dir: ".".to_string(),
            smoke: false,
            threads: 4,
            repetitions: 3,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => opts.out_dir = args.next().unwrap_or_else(|| usage("--out needs a value")),
            "--smoke" => opts.smoke = true,
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                opts.threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage(&format!("bad --threads value: {v}")));
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: baseline [--out dir] [--threads n] [--smoke]");
    std::process::exit(2);
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("at least one repetition"))
}

/// One serial-vs-parallel comparison row.
#[derive(Debug, Serialize)]
struct Comparison {
    name: String,
    /// Work units processed per run (rows for training, steps for replay
    /// and inference) — the numerator of the throughput columns.
    work_units: u64,
    serial_ms: f64,
    parallel_ms: f64,
    /// `serial / parallel`; > 1 means the parallel path is faster.
    speedup: f64,
    serial_per_s: f64,
    parallel_per_s: f64,
    /// Whether serial and parallel outputs were verified bit-identical.
    bit_identical: bool,
}

impl Comparison {
    fn new(
        name: &str,
        work_units: u64,
        serial_s: f64,
        parallel_s: f64,
        bit_identical: bool,
    ) -> Self {
        Comparison {
            name: name.to_string(),
            work_units,
            serial_ms: serial_s * 1e3,
            parallel_ms: parallel_s * 1e3,
            speedup: serial_s / parallel_s,
            serial_per_s: work_units as f64 / serial_s,
            parallel_per_s: work_units as f64 / parallel_s,
            bit_identical,
        }
    }
}

#[derive(Debug, Serialize)]
struct Report {
    schema: String,
    bench: String,
    smoke: bool,
    threads_parallel: usize,
    repetitions: usize,
    host_parallelism: usize,
    /// How to read the speedup columns on this host.
    note: String,
    results: Vec<Comparison>,
}

fn write_report(opts: &Options, file: &str, bench: &str, results: Vec<Comparison>) {
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let note = if host_parallelism < opts.threads {
        format!(
            "host exposes only {host_parallelism} hardware thread(s) for a \
             {}-thread budget: parallel rows measure scheduling overhead, not \
             speedup; regenerate on a multicore host to measure scaling",
            opts.threads
        )
    } else {
        "speedup = serial / parallel wall time; > 1 means the parallel path wins".to_string()
    };
    let report = Report {
        schema: SCHEMA.to_string(),
        bench: bench.to_string(),
        smoke: opts.smoke,
        threads_parallel: opts.threads,
        repetitions: opts.repetitions,
        host_parallelism,
        note,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = std::path::Path::new(&opts.out_dir).join(file);
    std::fs::create_dir_all(&opts.out_dir).expect("create out dir");
    std::fs::write(&path, json + "\n").expect("write report");
    println!("wrote {}", path.display());
}

/// Synthetic training dataset matching `bench_dtree`'s shape.
fn make_dataset(n: usize, n_features: usize) -> Dataset {
    let mut rng = SplitMix64::new(42);
    let mut ds = Dataset::with_anonymous_features(n_features, 2).expect("dataset");
    for _ in 0..n {
        let row: Vec<f64> = (0..n_features).map(|_| rng.next_f64()).collect();
        let risk: f64 = row.iter().take(3).sum::<f64>() / 3.0;
        let label = u32::from(rng.next_f64() < risk * 0.3);
        ds.push_row(&row, label).expect("row");
    }
    ds
}

fn bench_dtree(opts: &Options) {
    let rows = if opts.smoke { 3_000 } else { 20_000 };
    let ds = make_dataset(rows, 10);
    let mut results = Vec::new();
    for (name, splitter) in [
        ("fit_exact_depth8", Splitter::Exact),
        ("fit_histogram64_depth8", Splitter::Histogram { bins: 64 }),
    ] {
        let fit = |threads: usize| {
            TreeBuilder::new()
                .splitter(splitter)
                .max_depth(8)
                .threads(threads)
                .fit(&ds)
                .expect("fit")
        };
        let (serial_s, serial_tree) = time_best(opts.repetitions, || fit(1));
        let (parallel_s, parallel_tree) = time_best(opts.repetitions, || fit(opts.threads));
        let identical = serde_json::to_string(&serial_tree).expect("tree serializes")
            == serde_json::to_string(&parallel_tree).expect("tree serializes");
        results.push(Comparison::new(
            name,
            rows as u64,
            serial_s,
            parallel_s,
            identical,
        ));
        println!(
            "dtree/{name}: serial {:.1} ms, parallel({}) {:.1} ms, identical={identical}",
            serial_s * 1e3,
            opts.threads,
            parallel_s * 1e3,
        );
    }
    write_report(opts, "BENCH_dtree.json", "dtree", results);
}

fn bench_pipeline(opts: &Options) {
    let scale = if opts.smoke { 0.02 } else { 0.1 };
    let ctx = ExperimentContext::build(scale, 0xBE5C).expect("bench context builds");
    let mut results = Vec::new();

    // Training-side hot path: the series replay feeding taQIM fitting.
    let replay_steps: u64 = ctx.calib.iter().map(|s| s.len() as u64).sum();
    let stateless = ctx.tauw.stateless();
    let (serial_s, serial_rows) = time_best(opts.repetitions, || {
        replay_with_threads(stateless, &ctx.calib, 1).expect("replay")
    });
    let (parallel_s, parallel_rows) = time_best(opts.repetitions, || {
        replay_with_threads(stateless, &ctx.calib, opts.threads).expect("replay")
    });
    let identical = serial_rows == parallel_rows;
    results.push(Comparison::new(
        "replay_calibration_series",
        replay_steps,
        serial_s,
        parallel_s,
        identical,
    ));
    println!(
        "pipeline/replay: serial {:.1} ms, parallel({}) {:.1} ms, identical={identical}",
        serial_s * 1e3,
        opts.threads,
        parallel_s * 1e3,
    );

    // Inference-side hot path: N concurrent streams through batched
    // engine waves, vs the same traffic on a single-thread budget. One
    // engine is reused; `step_series_waves` resets the streams per run.
    let inference_steps: u64 = ctx.test.iter().map(|s| s.len() as u64).sum();
    let mut engine = TauwEngine::new(ctx.tauw.clone());
    let (serial_s, serial_steps) = time_best(opts.repetitions, || {
        engine.threads(1);
        engine.step_series_waves(&ctx.test).expect("waves")
    });
    let (parallel_s, parallel_steps) = time_best(opts.repetitions, || {
        engine.threads(opts.threads);
        engine.step_series_waves(&ctx.test).expect("waves")
    });
    let identical = serial_steps == parallel_steps;
    results.push(Comparison::new(
        "engine_step_many_test_streams",
        inference_steps,
        serial_s,
        parallel_s,
        identical,
    ));
    println!(
        "pipeline/step_many: serial {:.1} ms, parallel({}) {:.1} ms, identical={identical}",
        serial_s * 1e3,
        opts.threads,
        parallel_s * 1e3,
    );

    write_report(opts, "BENCH_pipeline.json", "pipeline", results);
}

fn main() {
    let opts = parse_args();
    println!(
        "baseline bench: smoke={}, parallel threads={}, host parallelism={}",
        opts.smoke,
        opts.threads,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    bench_dtree(&opts);
    bench_pipeline(&opts);
}
