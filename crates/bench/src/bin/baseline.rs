//! Perf-trajectory baseline: times the parallel training and multi-stream
//! inference hot paths at a fixed scale and writes machine-readable
//! `BENCH_dtree.json` and `BENCH_pipeline.json` files (wall time +
//! throughput, baseline-vs-contender pairs, bit-identity verdicts).
//!
//! Two kinds of comparison rows share one schema:
//!
//! * **serial vs parallel** — the same code on thread budgets 1 and N
//!   (training fan-out, series replay, batched engine waves);
//! * **pointer vs flat** — the arena [`tauw_dtree::DecisionTree`] against
//!   the compiled [`tauw_dtree::FlatTree`] serving form, on raw leaf
//!   routing and on the calibrated QIM lookup;
//! * **engine vs sharded** — the plain multi-stream engine against the
//!   sharded serving front end replaying a simulated stream cohort
//!   (steps/s + p99 wave latency; see the `soak` binary for the
//!   full-scale harness).
//!
//! Every row records whether the two sides produced bit-identical outputs;
//! the CI `bench-regression` job fails the build on any `false`, on schema
//! drift, or on a throughput collapse against the committed files.
//!
//! The committed files at the repo root are the baseline; regenerate with
//!
//! ```text
//! cargo run --release -p tauw-bench --bin baseline -- --out .
//! ```
//!
//! `--smoke` runs a heavily scaled-down variant for CI schema validation.

use std::time::Instant;
use tauw_bench::report::{write_report, Comparison};
use tauw_bench::soak;
use tauw_core::buffer::TimeseriesBuffer;
use tauw_core::calibration::ServingScratch;
use tauw_core::engine::TauwEngine;
use tauw_core::taqf::TaqfVector;
use tauw_core::tauw::replay_with_threads;
use tauw_dtree::{Dataset, FlatForest, FlatTree, ForestBuilder, Splitter, TreeBuilder};
use tauw_experiments::ExperimentContext;
use tauw_stats::bootstrap::SplitMix64;

#[derive(Debug, Clone)]
struct Options {
    out_dir: String,
    smoke: bool,
    threads: usize,
    repetitions: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            out_dir: ".".to_string(),
            smoke: false,
            threads: 4,
            repetitions: 3,
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => opts.out_dir = args.next().unwrap_or_else(|| usage("--out needs a value")),
            "--smoke" => opts.smoke = true,
            "--threads" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| usage("--threads needs a value"));
                opts.threads = v
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage(&format!("bad --threads value: {v}")));
            }
            other => usage(&format!("unknown argument: {other}")),
        }
    }
    opts
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: baseline [--out dir] [--threads n] [--smoke]");
    std::process::exit(2);
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let out = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(out);
    }
    (best, last.expect("at least one repetition"))
}

fn finish_report(opts: &Options, file: &str, bench: &str, results: Vec<Comparison>) {
    write_report(
        &opts.out_dir,
        file,
        bench,
        opts.smoke,
        opts.threads,
        opts.repetitions,
        results,
    );
}

/// Synthetic training dataset matching `bench_dtree`'s shape.
fn make_dataset(n: usize, n_features: usize) -> Dataset {
    let mut rng = SplitMix64::new(42);
    let mut ds = Dataset::with_anonymous_features(n_features, 2).expect("dataset");
    for _ in 0..n {
        let row: Vec<f64> = (0..n_features).map(|_| rng.next_f64()).collect();
        let risk: f64 = row.iter().take(3).sum::<f64>() / 3.0;
        let label = u32::from(rng.next_f64() < risk * 0.3);
        ds.push_row(&row, label).expect("row");
    }
    ds
}

/// Random query rows for the routing comparisons.
fn make_queries(n: usize, n_features: usize) -> Vec<Vec<f64>> {
    let mut rng = SplitMix64::new(0x51EE7);
    (0..n)
        .map(|_| (0..n_features).map(|_| rng.next_f64()).collect())
        .collect()
}

fn bench_dtree(opts: &Options) {
    let rows = if opts.smoke { 3_000 } else { 20_000 };
    let ds = make_dataset(rows, 10);
    let mut results = Vec::new();
    let parallel_label = format!("parallel({})", opts.threads);
    for (name, splitter) in [
        ("fit_exact_depth8", Splitter::Exact),
        ("fit_histogram64_depth8", Splitter::Histogram { bins: 64 }),
    ] {
        let fit = |threads: usize| {
            TreeBuilder::new()
                .splitter(splitter)
                .max_depth(8)
                .threads(threads)
                .fit(&ds)
                .expect("fit")
        };
        let (serial_s, serial_tree) = time_best(opts.repetitions, || fit(1));
        let (parallel_s, parallel_tree) = time_best(opts.repetitions, || fit(opts.threads));
        let identical = serde_json::to_string(&serial_tree).expect("tree serializes")
            == serde_json::to_string(&parallel_tree).expect("tree serializes");
        results.push(Comparison::new(
            name,
            rows as u64,
            ("serial", serial_s),
            (&parallel_label, parallel_s),
            identical,
        ));
        results.last().expect("just pushed").print();
    }

    // Routing: the pointer arena tree vs the flattened SoA serving form,
    // one query at a time (the wrapper's per-step shape).
    let tree = TreeBuilder::new()
        .splitter(Splitter::Exact)
        .max_depth(8)
        .fit(&ds)
        .expect("fit");
    let flat = FlatTree::from_tree(&tree);
    let queries = make_queries(rows, 10);
    let (pointer_s, pointer_leaves) = time_best(opts.repetitions, || {
        queries
            .iter()
            .map(|q| tree.leaf_id(q).expect("route"))
            .collect::<Vec<_>>()
    });
    let (flat_s, flat_leaves) = time_best(opts.repetitions, || {
        queries
            .iter()
            .map(|q| flat.predict_leaf_id(q).expect("route"))
            .collect::<Vec<_>>()
    });
    let identical = pointer_leaves.len() == flat_leaves.len()
        && pointer_leaves
            .iter()
            .zip(&flat_leaves)
            .all(|(&node, &lid)| flat.leaf(lid).node_id == node);
    results.push(Comparison::new(
        "route_single_pointer_vs_flat",
        rows as u64,
        ("pointer", pointer_s),
        ("flat", flat_s),
        identical,
    ));
    results.last().expect("just pushed").print();

    // Batched flat routing across the thread fan-out.
    let (batch1_s, batch1) = time_best(opts.repetitions, || {
        flat.predict_leaf_ids(1, &queries).expect("batch")
    });
    let (batch_n_s, batch_n) = time_best(opts.repetitions, || {
        flat.predict_leaf_ids(opts.threads, &queries)
            .expect("batch")
    });
    results.push(Comparison::new(
        "route_batch_flat",
        rows as u64,
        ("serial", batch1_s),
        (&parallel_label, batch_n_s),
        batch1 == batch_n && batch1 == flat_leaves,
    ));
    results.last().expect("just pushed").print();

    // The wave kernel itself, isolated from the thread fan-out: one query
    // at a time vs the level-synchronous batch-major traversal on one
    // thread. This is the cache-locality win the serving path banks on.
    let mut wave_out = vec![0u32; queries.len()];
    let (per_sample_s, per_sample) = time_best(opts.repetitions, || {
        queries
            .iter()
            .map(|q| flat.predict_leaf_id(q).expect("route"))
            .collect::<Vec<_>>()
    });
    let (wave_s, ()) = time_best(opts.repetitions, || {
        flat.route_batch_into(&queries, &mut wave_out)
            .expect("wave");
    });
    results.push(Comparison::new(
        "route_batch_major_vs_per_sample",
        rows as u64,
        ("per-sample", per_sample_s),
        ("batch-major", wave_s),
        per_sample == wave_out,
    ));
    results.last().expect("just pushed").print();

    // Forest-interleaved routing: K per-member traversals per row vs the
    // row-major interleaved wave over all members.
    let forest = {
        let mut builder = ForestBuilder::new(4, 0xF0E57);
        builder.tree(
            TreeBuilder::new()
                .splitter(Splitter::Exact)
                .max_depth(8)
                .clone(),
        );
        FlatForest::from_forest(&builder.fit(&ds).expect("forest fit"))
    };
    let k = forest.n_trees();
    let mut interleaved = vec![0u32; queries.len() * k];
    let (per_member_s, per_member) = time_best(opts.repetitions, || {
        let mut out = Vec::with_capacity(queries.len() * k);
        for q in &queries {
            out.extend(forest.predict_leaf_ids_per_tree(q).expect("route"));
        }
        out
    });
    let (interleaved_s, ()) = time_best(opts.repetitions, || {
        forest
            .route_batch_into(&queries, &mut interleaved)
            .expect("wave");
    });
    results.push(Comparison::new(
        "route_forest_interleaved_vs_per_member",
        (queries.len() * k) as u64,
        ("per-member", per_member_s),
        ("interleaved", interleaved_s),
        per_member == interleaved,
    ));
    results.last().expect("just pushed").print();

    finish_report(opts, "BENCH_dtree.json", "dtree", results);
}

fn bench_pipeline(opts: &Options) {
    let scale = if opts.smoke { 0.02 } else { 0.1 };
    let ctx = ExperimentContext::build(scale, 0xBE5C).expect("bench context builds");
    let mut results = Vec::new();
    let parallel_label = format!("parallel({})", opts.threads);

    // Training-side hot path: the series replay feeding taQIM fitting.
    let replay_steps: u64 = ctx.calib.iter().map(|s| s.len() as u64).sum();
    let stateless = ctx.tauw.stateless();
    let (serial_s, serial_rows) = time_best(opts.repetitions, || {
        replay_with_threads(stateless, &ctx.calib, 1).expect("replay")
    });
    let (parallel_s, parallel_rows) = time_best(opts.repetitions, || {
        replay_with_threads(stateless, &ctx.calib, opts.threads).expect("replay")
    });
    results.push(Comparison::new(
        "replay_calibration_series",
        replay_steps,
        ("serial", serial_s),
        (&parallel_label, parallel_s),
        serial_rows == parallel_rows,
    ));
    results.last().expect("just pushed").print();

    // Inference-side hot path: N concurrent streams through batched
    // engine waves, vs the same traffic on a single-thread budget. One
    // engine is reused; `step_series_waves` resets the streams per run.
    let inference_steps: u64 = ctx.test.iter().map(|s| s.len() as u64).sum();
    let mut engine = TauwEngine::new(ctx.tauw.clone());
    let (serial_s, serial_steps) = time_best(opts.repetitions, || {
        engine.threads(1);
        engine.step_series_waves(&ctx.test).expect("waves")
    });
    let (parallel_s, parallel_steps) = time_best(opts.repetitions, || {
        engine.threads(opts.threads);
        engine.step_series_waves(&ctx.test).expect("waves")
    });
    results.push(Comparison::new(
        "engine_step_many_test_streams",
        inference_steps,
        ("serial", serial_s),
        (&parallel_label, parallel_s),
        serial_steps == parallel_steps,
    ));
    results.last().expect("just pushed").print();

    // The calibrated QIM lookup itself: pointer reference vs the flat
    // serving path, over every stateless quality-factor vector in the test
    // windows. This is the per-step tree cost the wrapper pays twice
    // (stateless QIM + taQIM), isolated from buffering and fusion. The
    // flat side serves through the batch-major wave path — the shape
    // deployments actually use — with reused scratch.
    let qim = ctx.tauw.stateless().qim();
    let qfs: Vec<&[f64]> = ctx
        .test
        .iter()
        .flat_map(|s| s.steps.iter().map(|st| st.quality_factors.as_slice()))
        .collect();
    // Replicate the query set several times into one large wave so the row
    // clears the timer granularity even at smoke scale AND the batched
    // side pays its thread dispatch once per run, not once per pass. The
    // thread budget is clamped to the host: oversubscribing a small host
    // measures spawn overhead, not the serving path.
    const QIM_PASSES: usize = 32;
    let qim_wave: Vec<&[f64]> = (0..QIM_PASSES).flat_map(|_| qfs.iter().copied()).collect();
    let qim_threads = opts.threads.min(parallel::max_threads());
    let (pointer_s, pointer_u) = time_best(opts.repetitions, || {
        qim_wave
            .iter()
            .map(|q| qim.uncertainty_reference(q).expect("reference"))
            .collect::<Vec<_>>()
    });
    let mut scratch = ServingScratch::new();
    let (flat_s, flat_u) = time_best(opts.repetitions, || {
        let mut out = Vec::with_capacity(qim_wave.len());
        qim.uncertainty_batch_into(qim_threads, &qim_wave, &mut scratch, &mut out)
            .expect("flat batch");
        out
    });
    let identical = pointer_u.len() == flat_u.len()
        && pointer_u
            .iter()
            .zip(&flat_u)
            .all(|(a, b)| a.to_bits() == b.to_bits());
    results.push(Comparison::new(
        "qim_uncertainty_pointer_vs_flat",
        (qfs.len() * QIM_PASSES) as u64,
        ("pointer", pointer_s),
        ("flat", flat_s),
        identical,
    ));
    results.last().expect("just pushed").print();

    // The taQIM lookup across estimator families: the paper's single tree
    // vs a boundary-smoothed bootstrap forest of K members. Both sides
    // serve through the batch-major path, so the forest's K traversals are
    // interleaved row-major per wave and the per-member amortized cost is
    // what these rows lock in. `bit_identical` here verifies each side
    // against its own pointer-representation per-sample reference
    // recompute (the models legitimately differ from each other).
    let taqf_set = ctx.tauw.taqf_set();
    let ta_queries: Vec<Vec<f64>> = ctx
        .calib_replay
        .iter()
        .map(|row| row.ta_features(taqf_set))
        .collect();
    let single_taqim = ctx.tauw.taqim();
    const FOREST_PASSES: usize = 8;
    let ta_wave: Vec<&[f64]> = (0..FOREST_PASSES)
        .flat_map(|_| ta_queries.iter().map(Vec::as_slice))
        .collect();
    let ta_threads = opts.threads.min(parallel::max_threads());
    let mut ta_scratch = ServingScratch::new();
    let mut run_qim = |qim: &tauw_core::calibration::TaQim| {
        let mut out = Vec::with_capacity(ta_wave.len());
        qim.uncertainty_batch_into(ta_threads, &ta_wave, &mut ta_scratch, &mut out)
            .expect("qim batch");
        out
    };
    let verified_against_reference = |qim: &tauw_core::calibration::TaQim, served: &[f64]| {
        served.len() == ta_wave.len()
            && ta_wave.iter().zip(served).all(|(q, &u)| {
                qim.uncertainty_reference(q).expect("reference").to_bits() == u.to_bits()
            })
    };
    // One tree-side measurement, shared by both comparison rows — the
    // baseline workload is identical for every K.
    let (tree_s, tree_u) = time_best(opts.repetitions, || run_qim(single_taqim));
    let tree_verified = verified_against_reference(single_taqim, &tree_u);
    for k in [4usize, 16] {
        let forest_tauw = ctx
            .tauw_forest_variant(k, 0xF0E57 + k as u64)
            .expect("forest variant builds");
        let forest_taqim = forest_tauw.taqim();
        let (forest_s, forest_u) = time_best(opts.repetitions, || run_qim(forest_taqim));
        let identical = tree_verified && verified_against_reference(forest_taqim, &forest_u);
        results.push(Comparison::new(
            &format!("qim_uncertainty_tree_vs_forest{k}"),
            (ta_queries.len() * FOREST_PASSES) as u64,
            ("tree", tree_s),
            (&format!("forest{k}"), forest_s),
            identical,
        ));
        results.last().expect("just pushed").print();
    }

    // The taQIM lookup across the backend seam: the paper's single tree vs
    // the leafless split-conformal backend (histogram scorer + quantile
    // shift — table indexes instead of a traversal). Same wave, same
    // batched path, same per-side reference verification as the forest
    // rows above.
    let conformal_tauw = ctx
        .tauw_conformal_variant(tauw_core::conformal::ConformalOptions::default(), 0.9)
        .expect("conformal variant builds");
    let conformal_taqim = conformal_tauw.taqim();
    let (conformal_s, conformal_u) = time_best(opts.repetitions, || run_qim(conformal_taqim));
    let identical = tree_verified && verified_against_reference(conformal_taqim, &conformal_u);
    results.push(Comparison::new(
        "qim_uncertainty_tree_vs_conformal",
        (ta_queries.len() * FOREST_PASSES) as u64,
        ("tree", tree_s),
        ("conformal", conformal_s),
        identical,
    ));
    results.last().expect("just pushed").print();

    // Per-step taQF + fusion cost over a sliding window: the seed path
    // recomputed everything from the buffer each step (O(window)); serving
    // now reads running aggregates (O(1) in the window). Both paths run
    // the same deterministic traffic; the committed rows across window
    // sizes 10/100/10k are the lock-in — the incremental side must stay
    // flat in the window size while the recompute side degrades.
    let taqf_steps = if opts.smoke { 2_000 } else { 20_000 };
    let mut traffic_rng = SplitMix64::new(0x7A9F);
    let traffic: Vec<(u32, f64)> = (0..taqf_steps)
        .map(|_| (traffic_rng.next_index(3) as u32, traffic_rng.next_f64()))
        .collect();
    for window in [10usize, 100, 10_000] {
        let run_incremental = || {
            let mut buf = TimeseriesBuffer::bounded(window);
            let mut out = Vec::with_capacity(traffic.len());
            for &(outcome, u) in &traffic {
                buf.push(outcome, u);
                let fused = buf.fused_outcome().expect("non-empty");
                let taqf = TaqfVector::compute(&buf, fused).expect("non-empty");
                out.push((fused, taqf));
            }
            out
        };
        let run_recompute = || {
            let mut buf = TimeseriesBuffer::bounded(window);
            let mut out = Vec::with_capacity(traffic.len());
            for &(outcome, u) in &traffic {
                buf.push(outcome, u);
                let fused = buf.fused_outcome_reference().expect("non-empty");
                let taqf = TaqfVector::compute_reference(&buf, fused).expect("non-empty");
                out.push((fused, taqf));
            }
            out
        };
        let (recompute_s, recompute_out) = time_best(opts.repetitions, run_recompute);
        let (incremental_s, incremental_out) = time_best(opts.repetitions, run_incremental);
        let identical = recompute_out.len() == incremental_out.len()
            && recompute_out.iter().zip(&incremental_out).all(|(a, b)| {
                a.0 == b.0
                    && a.1.ratio.to_bits() == b.1.ratio.to_bits()
                    && a.1.length.to_bits() == b.1.length.to_bits()
                    && a.1.unique_outcomes.to_bits() == b.1.unique_outcomes.to_bits()
                    && a.1.cumulative_certainty.to_bits() == b.1.cumulative_certainty.to_bits()
            });
        results.push(Comparison::new(
            &format!("taqf_step_window_{window}"),
            taqf_steps as u64,
            ("recompute", recompute_s),
            ("incremental", incremental_s),
            identical,
        ));
        results.last().expect("just pushed").print();
    }

    // Per-step adaptive-calibration cost over the coverage window: the
    // reference path recomputes the coverage stats from the ring each step
    // (O(window)); serving reads the buffer's running aggregates (O(1) in
    // the window). Same lock-in shape as the taQF rows above: the
    // incremental side must stay flat in the window size.
    let adaptive_steps = if opts.smoke { 2_000 } else { 20_000 };
    let mut adaptive_rng = SplitMix64::new(0xADA9);
    let adaptive_traffic: Vec<(bool, f64)> = (0..adaptive_steps)
        .map(|_| (adaptive_rng.next_f64() < 0.3, adaptive_rng.next_f64()))
        .collect();
    for window in [10usize, 100, 10_000] {
        let config = tauw_core::adaptive::AdaptiveConfig {
            window,
            min_observations: (window / 4).max(1),
            rate: 0.05,
            ..Default::default()
        };
        let run_stepper = |observe: fn(&mut tauw_core::adaptive::AdaptiveState, f64, bool)| {
            let mut state = tauw_core::adaptive::AdaptiveState::new(config).expect("valid config");
            let mut out = Vec::with_capacity(adaptive_traffic.len());
            for &(failed, bound) in &adaptive_traffic {
                let served = state.adapted_bound(bound);
                observe(&mut state, served, failed);
                out.push((state.inflation_steps(), state.adapted_bound(0.37)));
            }
            out
        };
        let (reference_s, reference_out) = time_best(opts.repetitions, || {
            run_stepper(tauw_core::adaptive::AdaptiveState::observe_reference)
        });
        let (incremental_s, incremental_out) = time_best(opts.repetitions, || {
            run_stepper(tauw_core::adaptive::AdaptiveState::observe)
        });
        let identical = reference_out.len() == incremental_out.len()
            && reference_out
                .iter()
                .zip(&incremental_out)
                .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits());
        results.push(Comparison::new(
            &format!("adaptive_step_window_{window}"),
            adaptive_steps as u64,
            ("recompute", reference_s),
            ("incremental", incremental_s),
            identical,
        ));
        results.last().expect("just pushed").print();
    }

    // Service-soak row: the sharded front end replaying a simulated stream
    // cohort against the plain multi-stream engine on the same traffic —
    // the schema-v9 lock-in for throughput (steps/s) and p99 wave latency
    // of the serving tier. One replay per side (a soak, not a best-of-N
    // microbenchmark); the full-scale harness is the `soak` binary.
    let soak_cfg = soak::SoakConfig {
        streams: if opts.smoke { 2_000 } else { 20_000 },
        waves: if opts.smoke { 50 } else { 100 },
        shards: 8,
        threads: opts.threads.min(parallel::max_threads()),
        seed: 0x50AC,
        scenario: soak::SoakScenario::Uniform,
    };
    let soak_wrapper = soak::soak_wrapper();
    let outcome = soak::run_with_wrapper(&soak_wrapper, &soak_cfg);
    results.push(
        Comparison::new(
            "soak_engine_vs_sharded",
            outcome.steps,
            ("engine", outcome.engine.total_s),
            (
                &format!("sharded({})", soak_cfg.shards),
                outcome.sharded.total_s,
            ),
            outcome.bit_identical,
        )
        .with_p99(outcome.engine.p99_wave_ms, outcome.sharded.p99_wave_ms),
    );
    results.last().expect("just pushed").print();

    // The same cohort under the hash-partitioned scenario mix (dropout,
    // regime switch, heavy tails, multi-source): the schema-v9 lock-in
    // that scenario-shaped traffic serves at comparable throughput and
    // stays bit-identical across the sharded front end.
    let mixed_cfg = soak::SoakConfig {
        scenario: soak::SoakScenario::Mixed,
        ..soak_cfg
    };
    let mixed = soak::run_with_wrapper(&soak_wrapper, &mixed_cfg);
    results.push(
        Comparison::new(
            "soak_scenario_mixed",
            mixed.steps,
            ("engine", mixed.engine.total_s),
            (
                &format!("sharded({})", mixed_cfg.shards),
                mixed.sharded.total_s,
            ),
            mixed.bit_identical,
        )
        .with_p99(mixed.engine.p99_wave_ms, mixed.sharded.p99_wave_ms),
    );
    results.last().expect("just pushed").print();

    finish_report(opts, "BENCH_pipeline.json", "pipeline", results);
}

fn main() {
    let opts = parse_args();
    println!(
        "baseline bench: smoke={}, parallel threads={}, host parallelism={}",
        opts.smoke,
        opts.threads,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    bench_dtree(&opts);
    bench_pipeline(&opts);
}
