//! Shared fixtures for the taUW criterion benches: a deterministic
//! scaled-down experiment context plus synthetic forecast/label sets,
//! the machine-readable baseline [`report`] schema shared by the
//! `baseline` and `soak` binaries, and the sharded-serving [`soak`]
//! harness itself.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod report;
pub mod soak;

use tauw_experiments::ExperimentContext;
use tauw_stats::bootstrap::SplitMix64;

/// Seed shared by all benches.
pub const BENCH_SEED: u64 = 0xBE5C;

/// Builds the small deterministic world the pipeline benches run against
/// (5% of paper scale ≈ 2k training series, ~200 test windows).
pub fn small_context() -> ExperimentContext {
    ExperimentContext::build(0.05, BENCH_SEED).expect("bench context builds")
}

/// Builds a mid-size context for the table-regeneration benches.
pub fn medium_context() -> ExperimentContext {
    ExperimentContext::build(0.1, BENCH_SEED).expect("bench context builds")
}

/// Deterministic synthetic `(forecasts, failures)` with `n` cases and a
/// handful of distinct forecast levels (tree-like output shape).
pub fn synthetic_forecasts(n: usize) -> (Vec<f64>, Vec<bool>) {
    let levels = [0.005, 0.01, 0.02, 0.05, 0.1, 0.25, 0.6];
    let mut rng = SplitMix64::new(7);
    let mut forecasts = Vec::with_capacity(n);
    let mut failures = Vec::with_capacity(n);
    for _ in 0..n {
        let level = levels[rng.next_index(levels.len())];
        forecasts.push(level);
        failures.push(rng.next_f64() < level * 0.9);
    }
    (forecasts, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_forecasts_have_requested_size() {
        let (f, y) = synthetic_forecasts(1000);
        assert_eq!(f.len(), 1000);
        assert_eq!(y.len(), 1000);
        assert!(f.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn synthetic_forecasts_are_deterministic() {
        assert_eq!(synthetic_forecasts(256), synthetic_forecasts(256));
    }

    #[test]
    fn context_smoke_builds_at_two_percent_scale() {
        // A scaled-down version of the fixtures the benches run against;
        // guards the bench crate's setup path without bench-sized runtimes.
        let ctx = ExperimentContext::build(0.02, BENCH_SEED).expect("2% context builds");
        assert!(!ctx.train.is_empty());
        assert!(!ctx.calib.is_empty());
        assert!(!ctx.test.is_empty());
        let mut session = ctx.tauw.new_session();
        session.begin_series();
        let series = &ctx.test[0];
        let step = series.steps.first().expect("test series has steps");
        let out = session
            .step(&step.quality_factors, step.outcome)
            .expect("session steps");
        assert!((0.0..=1.0).contains(&out.uncertainty));
    }
}
