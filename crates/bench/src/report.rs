//! The machine-readable baseline report schema shared by the `baseline`
//! and `soak` binaries: one schema tag, one comparison-row shape, one
//! writer with a programmatically composed reading guide.

use serde::Serialize;

/// Schema tag so CI can detect malformed or stale baseline files.
///
/// v2: rows carry explicit `baseline_label` / `contender_label` columns so
/// pointer-vs-flat rows coexist with serial-vs-parallel rows.
/// v3: adds the per-step taQF rows `taqf_step_window_{10,100,10000}`
/// (full-recompute vs incremental-aggregate serving) so the O(1)-in-window
/// per-step cost is measured and locked in.
/// v4: adds the `qim_uncertainty_tree_vs_forest{4,16}` rows (single-tree
/// taQIM vs boundary-smoothed K-member forest) so the K-traversal serving
/// cost of the ensemble estimator is measured and locked in.
/// v5: adds the `adaptive_step_window_{10,100,10000}` rows (coverage-stats
/// recompute vs incremental-aggregate adaptive stepping) so the O(1)
/// per-step cost of the adaptive calibration layer is measured and locked
/// in.
/// v6: the flat side of `qim_uncertainty_pointer_vs_flat` serves through
/// the batch-major `uncertainty_batch_into` path (the deployed serving
/// shape), the tree-vs-forest rows serve both estimators through the same
/// batched path (amortizing the K-member fan-out per wave), and the new
/// `route_batch_major_vs_per_sample` / `route_forest_interleaved_vs_per_member`
/// rows lock in the level-synchronous wave kernels against one-query-at-a-
/// time routing.
/// v7: adds the `qim_uncertainty_tree_vs_conformal` row (single-tree taQIM
/// vs the leafless split-conformal backend behind the `QimBackend` seam) so
/// the table-lookup serving cost of the distribution-free estimator is
/// measured and locked in.
/// v8: every row carries `baseline_p99_ms` / `contender_p99_ms` tail-latency
/// columns (`0.0` on rows that only time aggregate wall time), and the
/// pipeline report gains the `soak_engine_vs_sharded` row — the sharded
/// serving front end replaying a simulated stream cohort against the plain
/// multi-stream engine, recording steps/s and p99 wave latency.
/// v9: the pipeline report gains the `soak_scenario_mixed` row — the soak
/// cohort replayed through the hash-partitioned scenario mix (dropout,
/// regime switch, heavy tails, multi-source overlays on the hashed
/// traffic), locking in throughput and bit-identity for scenario-shaped
/// serving; the `soak` binary gains `--scenario`, writing scenario rows
/// as `soak_scenario_<name>`.
pub const SCHEMA: &str = "tauw-bench-baseline/v9";

/// One timed comparison row: a baseline implementation against a
/// contender, with throughput on both sides and a bit-identity verdict.
#[derive(Debug, Serialize)]
pub struct Comparison {
    /// Row identifier, stable across schema versions.
    pub name: String,
    /// Work units processed per run (rows for training, routed samples or
    /// steps for inference) — the numerator of the throughput columns.
    pub work_units: u64,
    /// What the `baseline_*` columns measure (e.g. "serial", "pointer").
    pub baseline_label: String,
    /// What the `contender_*` columns measure (e.g. "parallel(4)", "flat").
    pub contender_label: String,
    /// Baseline wall time, milliseconds.
    pub baseline_ms: f64,
    /// Contender wall time, milliseconds.
    pub contender_ms: f64,
    /// `baseline / contender` wall time; > 1 means the contender is faster.
    pub speedup: f64,
    /// Baseline throughput, work units per second.
    pub baseline_per_s: f64,
    /// Contender throughput, work units per second.
    pub contender_per_s: f64,
    /// p99 per-wave latency of the baseline side, milliseconds. `0.0` on
    /// rows that only time aggregate wall time (no per-wave samples).
    pub baseline_p99_ms: f64,
    /// p99 per-wave latency of the contender side, milliseconds. `0.0` on
    /// rows that only time aggregate wall time.
    pub contender_p99_ms: f64,
    /// Whether both sides produced verified bit-identical outputs.
    pub bit_identical: bool,
}

impl Comparison {
    /// Builds a row from `(label, seconds)` pairs; the p99 columns start
    /// at `0.0` — see [`Comparison::with_p99`].
    pub fn new(
        name: &str,
        work_units: u64,
        (baseline_label, baseline_s): (&str, f64),
        (contender_label, contender_s): (&str, f64),
        bit_identical: bool,
    ) -> Self {
        Comparison {
            name: name.to_string(),
            work_units,
            baseline_label: baseline_label.to_string(),
            contender_label: contender_label.to_string(),
            baseline_ms: baseline_s * 1e3,
            contender_ms: contender_s * 1e3,
            speedup: baseline_s / contender_s,
            baseline_per_s: work_units as f64 / baseline_s,
            contender_per_s: work_units as f64 / contender_s,
            baseline_p99_ms: 0.0,
            contender_p99_ms: 0.0,
            bit_identical,
        }
    }

    /// Attaches p99 per-wave tail latencies (milliseconds) to the row.
    #[must_use]
    pub fn with_p99(mut self, baseline_p99_ms: f64, contender_p99_ms: f64) -> Self {
        self.baseline_p99_ms = baseline_p99_ms;
        self.contender_p99_ms = contender_p99_ms;
        self
    }

    /// Prints the row in the one-line console format the binaries use.
    pub fn print(&self) {
        println!(
            "{}: {} {:.2} ms vs {} {:.2} ms ({:.2}x, identical={})",
            self.name,
            self.baseline_label,
            self.baseline_ms,
            self.contender_label,
            self.contender_ms,
            self.speedup,
            self.bit_identical,
        );
    }
}

/// The on-disk report: schema tag, run shape, host note, comparison rows.
#[derive(Debug, Serialize)]
pub struct Report {
    /// [`SCHEMA`].
    pub schema: String,
    /// Which bench produced the file ("dtree", "pipeline", "soak").
    pub bench: String,
    /// Whether the run used the scaled-down CI smoke shape.
    pub smoke: bool,
    /// Thread budget of the parallel sides.
    pub threads_parallel: usize,
    /// Best-of-N repetitions per timed section.
    pub repetitions: usize,
    /// Hardware threads the producing host exposed.
    pub host_parallelism: usize,
    /// Host description plus how to read the speedup columns, composed
    /// programmatically from the environment the run actually saw.
    pub note: String,
    /// The comparison rows.
    pub results: Vec<Comparison>,
}

/// Composes the report `note` from the environment the run actually saw:
/// host shape, how to read the speedup columns, the `TAUW_THREADS` cap
/// that applied, and whether `BENCH_SPEEDUP_FLOOR` gates this file.
pub fn compose_note(threads_parallel: usize, host_parallelism: usize) -> String {
    let reading_guide = if host_parallelism < threads_parallel {
        format!(
            "host exposes fewer hardware threads than the {threads_parallel}-thread budget: \
             parallel rows measure scheduling overhead, not speedup; \
             regenerate on a multicore host to measure scaling"
        )
    } else {
        "speedup = baseline / contender wall time; > 1 means the contender wins".to_string()
    };
    let tauw_threads_guide = match std::env::var("TAUW_THREADS") {
        Ok(v) => format!("TAUW_THREADS={v} capped the default wave parallelism for this run"),
        Err(_) => {
            "TAUW_THREADS was unset (unpinned wave paths default to host parallelism)".to_string()
        }
    };
    let floor_guide = if host_parallelism <= 1 {
        "the BENCH_SPEEDUP_FLOOR gate is skipped against this file (1-thread host); \
         regenerate on a multicore host before tightening the floor"
    } else {
        "parallel rows in this file are gated by BENCH_SPEEDUP_FLOOR (default 1.0)"
    };
    format!(
        "host: {host_parallelism} hardware thread(s), {}-{}; {reading_guide}; \
         {tauw_threads_guide}; {floor_guide}",
        std::env::consts::OS,
        std::env::consts::ARCH,
    )
}

/// Writes `results` as a pretty-printed JSON [`Report`] to
/// `out_dir/file`, composing the note via [`compose_note`].
pub fn write_report(
    out_dir: &str,
    file: &str,
    bench: &str,
    smoke: bool,
    threads_parallel: usize,
    repetitions: usize,
    results: Vec<Comparison>,
) {
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = Report {
        schema: SCHEMA.to_string(),
        bench: bench.to_string(),
        smoke,
        threads_parallel,
        repetitions,
        host_parallelism,
        note: compose_note(threads_parallel, host_parallelism),
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    let path = std::path::Path::new(out_dir).join(file);
    std::fs::create_dir_all(out_dir).expect("create out dir");
    std::fs::write(&path, json + "\n").expect("write report");
    println!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_rows_carry_p99_columns() {
        let row = Comparison::new("r", 100, ("a", 0.5), ("b", 0.25), true);
        assert_eq!(row.baseline_p99_ms, 0.0);
        assert_eq!(row.contender_p99_ms, 0.0);
        assert!((row.speedup - 2.0).abs() < 1e-12);
        let row = row.with_p99(1.5, 0.75);
        assert_eq!(row.baseline_p99_ms, 1.5);
        assert_eq!(row.contender_p99_ms, 0.75);
        let json = serde_json::to_string(&row).expect("row serializes");
        for column in [
            "\"name\"",
            "\"work_units\"",
            "\"baseline_label\"",
            "\"contender_label\"",
            "\"baseline_ms\"",
            "\"contender_ms\"",
            "\"speedup\"",
            "\"baseline_per_s\"",
            "\"contender_per_s\"",
            "\"baseline_p99_ms\"",
            "\"contender_p99_ms\"",
            "\"bit_identical\"",
        ] {
            assert!(json.contains(column), "missing {column} in {json}");
        }
    }

    #[test]
    fn schema_tag_is_v9() {
        assert_eq!(SCHEMA, "tauw-bench-baseline/v9");
    }

    #[test]
    fn note_names_the_env_knobs() {
        let note = compose_note(4, 1);
        assert!(note.contains("TAUW_THREADS"));
        assert!(note.contains("BENCH_SPEEDUP_FLOOR"));
        assert!(note.contains("1 hardware thread(s)"));
        // Multicore hosts get the gating phrasing instead of the skip note.
        let note = compose_note(4, 8);
        assert!(note.contains("gated by BENCH_SPEEDUP_FLOOR"));
    }
}
