//! Service-soak harness for the sharded serving front end: replays a
//! large simulated stream cohort through the plain multi-stream
//! [`TauwEngine`] and the sharded [`ShardedEngine`], recording throughput
//! (steps/s), p99 per-wave latency, and a bit-identity verdict between
//! the two sides.
//!
//! Traffic is derived per `(stream, wave)` from a [`SplitMix64`] hash of
//! the two ids, so a 1M-stream cohort needs no stored series — memory is
//! bounded by the engines' own per-stream buffers, which the harness
//! bounds to a [`BUFFER_WINDOW`]-step sliding window so cohort memory
//! stays flat in the wave count. A [`SoakScenario`] reshapes that traffic
//! into the simulator's workload families (dropout, regime switch, heavy
//! tails, multi-source, or a hash-partitioned mix) as pure overlays on
//! the same hash — still stateless, still bit-identical by construction.
//!
//! The identity verdict compares an order-sensitive FNV-1a fingerprint
//! folded over the raw bits of every served output field on each side;
//! the exhaustive per-step bitwise guarantees live in the core sharded
//! tests and the workspace determinism/property suites — the soak verdict
//! is the always-on end-to-end check at cohort scale.

use std::time::Instant;
use tauw_core::calibration::CalibrationOptions;
use tauw_core::engine::{StreamId, TauwEngine};
use tauw_core::error::CoreError;
use tauw_core::sharded::ShardedEngine;
use tauw_core::tauw::{TauwBuilder, TauwStep, TimeseriesAwareWrapper};
use tauw_core::training::{TrainingSeries, TrainingStep};
use tauw_core::wrapper::WrapperBuilder;
use tauw_stats::bootstrap::SplitMix64;

/// Sliding-window bound applied to every stream buffer so cohort memory
/// is `O(streams × window)`, independent of the wave count.
pub const BUFFER_WINDOW: usize = 64;

/// Scenario traffic families for the soak cohort, mirroring the
/// simulator's first-class workload families (`tauw_sim::scenario`) at
/// serving scale. Each family is a pure function of
/// `(seed, stream, wave, waves)` — no stored state — so the traffic both
/// engine sides see is bit-identical across shard counts and thread
/// budgets by construction, and the soak fingerprint stays a pure
/// function of `(scenario, seed, model)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SoakScenario {
    /// The original uniform cohort: i.i.d. quality draws per step.
    #[default]
    Uniform,
    /// Sensor dropout: some readings are stale (held from the last
    /// refresh wave) or dead (quality reads zero); outcomes are untouched
    /// because the latent world never changed.
    Dropout,
    /// Mid-soak regime switch: from the half-way wave, a fraction of
    /// streams become systematically confused — every outcome reports
    /// the failure class while the quality reading stays clean.
    RegimeSwitch,
    /// Heavy-tailed bursts: Pareto excursions on the quality reading;
    /// outcomes still follow the clean reading.
    HeavyTails,
    /// Correlated multi-source evidence: streams come in triples sharing
    /// a primary; secondaries carry noised readings and outcomes copied
    /// from the primary with probability 1/2.
    MultiSource,
    /// Per-stream mix of all five families (hash-partitioned cohort).
    Mixed,
}

impl SoakScenario {
    /// Stable lowercase name, accepted back by [`SoakScenario::from_name`].
    pub fn name(self) -> &'static str {
        match self {
            SoakScenario::Uniform => "uniform",
            SoakScenario::Dropout => "dropout",
            SoakScenario::RegimeSwitch => "regime_switch",
            SoakScenario::HeavyTails => "heavy_tails",
            SoakScenario::MultiSource => "multi_source",
            SoakScenario::Mixed => "mixed",
        }
    }

    /// Parses a scenario name (the CLI `--scenario` values), with the
    /// same short aliases the simulator families accept.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "uniform" => Some(SoakScenario::Uniform),
            "dropout" => Some(SoakScenario::Dropout),
            "regime_switch" | "regime" => Some(SoakScenario::RegimeSwitch),
            "heavy_tails" | "heavy" => Some(SoakScenario::HeavyTails),
            "multi_source" | "multisource" => Some(SoakScenario::MultiSource),
            "mixed" => Some(SoakScenario::Mixed),
            _ => None,
        }
    }

    /// Every scenario, in a stable order.
    pub fn all() -> [SoakScenario; 6] {
        [
            SoakScenario::Uniform,
            SoakScenario::Dropout,
            SoakScenario::RegimeSwitch,
            SoakScenario::HeavyTails,
            SoakScenario::MultiSource,
            SoakScenario::Mixed,
        ]
    }
}

/// Cohort shape for one soak run. All counts are clamped to ≥ 1.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Concurrent streams in the cohort (one step per stream per wave).
    pub streams: usize,
    /// Waves replayed.
    pub waves: usize,
    /// Shard count of the sharded side.
    pub shards: usize,
    /// Thread budget for both sides.
    pub threads: usize,
    /// Traffic seed.
    pub seed: u64,
    /// Traffic family the cohort replays.
    pub scenario: SoakScenario,
}

impl SoakConfig {
    fn normalized(mut self) -> Self {
        self.streams = self.streams.max(1);
        self.waves = self.waves.max(1);
        self.shards = self.shards.max(1);
        self.threads = self.threads.max(1);
        self
    }
}

/// Timing and identity evidence from one side of the soak comparison.
#[derive(Debug, Clone, Copy)]
pub struct SideStats {
    /// Total wall time spent inside the wave dispatch, seconds.
    pub total_s: f64,
    /// p99 per-wave latency (nearest-rank over all waves), milliseconds.
    pub p99_wave_ms: f64,
    /// Order-sensitive FNV-1a fingerprint over the raw bits of every
    /// served output field.
    pub fingerprint: u64,
}

/// Outcome of a soak run: both sides plus the cross-side verdict.
#[derive(Debug, Clone, Copy)]
pub struct SoakOutcome {
    /// Total steps served per side (`streams × waves`).
    pub steps: u64,
    /// The plain multi-stream engine side.
    pub engine: SideStats,
    /// The sharded front-end side.
    pub sharded: SideStats,
    /// Whether both sides' output fingerprints matched.
    pub bit_identical: bool,
}

/// Trains the small deterministic wrapper the soak cohort is served from
/// (one quality factor, outcomes drawn from `{3, 7}`).
pub fn soak_wrapper() -> TimeseriesAwareWrapper {
    let make_series = |n: usize, seed: u64| -> Vec<TrainingSeries> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let q = rng.next_f64();
                let bias = if rng.next_f64() < 0.5 { 1.3 } else { 0.5 };
                let steps = (0..10)
                    .map(|_| {
                        let failed = rng.next_f64() < (q * bias).min(0.95);
                        TrainingStep {
                            quality_factors: vec![q],
                            outcome: if failed { 3 } else { 7 },
                        }
                    })
                    .collect();
                TrainingSeries {
                    true_outcome: 7,
                    steps,
                }
            })
            .collect()
    };
    let train = make_series(300, 0x50AC_0001);
    let calib = make_series(300, 0x50AC_0002);
    let mut wb = WrapperBuilder::new();
    wb.max_depth(3).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    builder
        .fit(vec!["q".into()], &train, &calib)
        .expect("soak wrapper fits")
}

/// Deterministic per-`(stream, wave)` traffic: a quality factor in
/// `[0, 1)` and an outcome from the trained domain `{3, 7}`.
fn traffic(seed: u64, stream: u64, wave: u64) -> (f64, u32) {
    let mut rng = SplitMix64::new(
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ wave.wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    let q = rng.next_f64();
    let failed = rng.next_f64() < (q * 0.9).min(0.95);
    (q, if failed { 3 } else { 7 })
}

/// Stateless per-`(stream, wave)` RNG for a scenario overlay, salted so
/// overlay draws never alias the base traffic stream.
fn overlay_rng(salt: u64, seed: u64, stream: u64, wave: u64) -> SplitMix64 {
    SplitMix64::new(
        seed ^ salt
            ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ wave.wrapping_mul(0xBF58_476D_1CE4_E5B9),
    )
}

/// Per-stream hash in `[0, 1)`, independent of the wave — used for
/// stream-level scenario decisions (which streams flip regime, which
/// family a mixed-cohort stream belongs to).
fn stream_hash(salt: u64, seed: u64, stream: u64) -> f64 {
    SplitMix64::new(seed ^ salt ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_f64()
}

/// Scenario-shaped traffic: the base draw routed through the family's
/// pure overlay. Every branch is a function of the arguments alone.
fn scenario_traffic(
    scenario: SoakScenario,
    seed: u64,
    stream: u64,
    wave: u64,
    waves: u64,
) -> (f64, u32) {
    match scenario {
        SoakScenario::Uniform => traffic(seed, stream, wave),
        SoakScenario::Dropout => {
            let (q, o) = traffic(seed, stream, wave);
            let mut rng = overlay_rng(0xD809_0000, seed, stream, wave);
            if rng.next_f64() < 0.25 {
                if rng.next_f64() < 0.5 {
                    // Stale: hold the reading from the last refresh wave
                    // (every 4th wave) — a deterministic "last known value"
                    // with no stored state.
                    let (held, _) = traffic(seed, stream, wave - wave % 4);
                    (held, o)
                } else {
                    // Dead: the sensor reads zero; the world (and so the
                    // outcome) is unchanged.
                    (0.0, o)
                }
            } else {
                (q, o)
            }
        }
        SoakScenario::RegimeSwitch => {
            let (q, o) = traffic(seed, stream, wave);
            let switched = wave >= waves / 2 && stream_hash(0x4E61_0000, seed, stream) < 0.35;
            // Systematic confusion: the failure class, every wave, while
            // the quality reading stays clean.
            (q, if switched { 3 } else { o })
        }
        SoakScenario::HeavyTails => {
            let (q, o) = traffic(seed, stream, wave);
            let mut rng = overlay_rng(0x7A11_0000, seed, stream, wave);
            if rng.next_f64() < 0.1 {
                let excess = rng.next_f64().max(1e-9).powf(-1.0 / 1.5) - 1.0;
                let sign = if rng.next_f64() < 0.5 { -1.0 } else { 1.0 };
                ((q + sign * 0.2 * excess).clamp(0.0, 1.0), o)
            } else {
                (q, o)
            }
        }
        SoakScenario::MultiSource => {
            let source = stream % 3;
            let primary = stream - source;
            let (q, o) = traffic(seed, primary, wave);
            if source == 0 {
                return (q, o);
            }
            let mut rng = overlay_rng(0x3507_0000, seed, stream, wave);
            let noised = (q + 0.1 * (rng.next_f64() - 0.5)).clamp(0.0, 1.0);
            let outcome = if rng.next_f64() < 0.5 {
                o // correlated: copy the primary's evidence
            } else if rng.next_f64() < (noised * 0.9).min(0.95) {
                3
            } else {
                7
            };
            (noised, outcome)
        }
        SoakScenario::Mixed => {
            let pick = (stream_hash(0x310D_0000, seed, stream) * 5.0) as usize;
            let family = [
                SoakScenario::Uniform,
                SoakScenario::Dropout,
                SoakScenario::RegimeSwitch,
                SoakScenario::HeavyTails,
                SoakScenario::MultiSource,
            ][pick.min(4)];
            scenario_traffic(family, seed, stream, wave, waves)
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(hash: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *hash = (*hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
}

fn fold_step(hash: &mut u64, step: &TauwStep) {
    fold(hash, u64::from(step.fused_outcome));
    fold(hash, step.uncertainty.to_bits());
    fold(hash, step.stateless_uncertainty.to_bits());
    fold(hash, step.adapted_uncertainty.to_bits());
    fold(hash, step.series_length as u64);
    fold(hash, step.taqf.ratio.to_bits());
    fold(hash, step.taqf.length.to_bits());
    fold(hash, step.taqf.unique_outcomes.to_bits());
    fold(hash, step.taqf.cumulative_certainty.to_bits());
}

/// Nearest-rank p99 of the recorded per-wave latencies, milliseconds.
fn p99_ms(latencies: &mut [f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((latencies.len() as f64) * 0.99).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

/// Replays the cohort through one side. Batch construction is untimed;
/// only the wave dispatch itself contributes to the latency samples.
fn run_side<F>(cfg: &SoakConfig, mut step_wave: F) -> Result<SideStats, CoreError>
where
    F: FnMut(&[(StreamId, &[f64], u32)]) -> Result<Vec<TauwStep>, CoreError>,
{
    let mut features = vec![0.0f64; cfg.streams];
    let mut outcomes = vec![0u32; cfg.streams];
    let mut latencies = Vec::with_capacity(cfg.waves);
    let mut hash = FNV_OFFSET;
    let mut total_s = 0.0;
    for wave in 0..cfg.waves {
        for (i, (feature, outcome)) in features.iter_mut().zip(&mut outcomes).enumerate() {
            let (q, o) = scenario_traffic(
                cfg.scenario,
                cfg.seed,
                i as u64,
                wave as u64,
                cfg.waves as u64,
            );
            *feature = q;
            *outcome = o;
        }
        let batch: Vec<(StreamId, &[f64], u32)> = features
            .iter()
            .zip(&outcomes)
            .enumerate()
            .map(|(i, (q, &o))| (StreamId(i as u64), std::slice::from_ref(q), o))
            .collect();
        let start = Instant::now();
        let results = step_wave(&batch)?;
        let wave_s = start.elapsed().as_secs_f64();
        total_s += wave_s;
        latencies.push(wave_s * 1e3);
        for step in &results {
            fold_step(&mut hash, step);
        }
    }
    Ok(SideStats {
        total_s,
        p99_wave_ms: p99_ms(&mut latencies),
        fingerprint: hash,
    })
}

/// Runs the soak comparison with a freshly trained [`soak_wrapper`].
pub fn run(cfg: &SoakConfig) -> SoakOutcome {
    run_with_wrapper(&soak_wrapper(), cfg)
}

/// Runs the soak comparison against an already trained wrapper: the
/// plain engine first, then the sharded front end, on identical traffic.
pub fn run_with_wrapper(wrapper: &TimeseriesAwareWrapper, cfg: &SoakConfig) -> SoakOutcome {
    let cfg = cfg.normalized();
    let mut engine = TauwEngine::new(wrapper.clone());
    engine.threads(cfg.threads).buffer_capacity(BUFFER_WINDOW);
    let engine_stats =
        run_side(&cfg, |batch| engine.step_many_borrowed(batch)).expect("plain engine serves");
    drop(engine);
    let mut sharded = ShardedEngine::new(wrapper.clone(), cfg.shards);
    sharded.threads(cfg.threads).buffer_capacity(BUFFER_WINDOW);
    let sharded_stats =
        run_side(&cfg, |batch| sharded.step_many_borrowed(batch)).expect("sharded engine serves");
    SoakOutcome {
        steps: (cfg.streams * cfg.waves) as u64,
        engine: engine_stats,
        sharded: sharded_stats,
        bit_identical: engine_stats.fingerprint == sharded_stats.fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_is_nearest_rank() {
        let mut one = [3.5];
        assert_eq!(p99_ms(&mut one), 3.5);
        let mut hundred: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p99_ms(&mut hundred), 99.0);
        let mut fifty: Vec<f64> = (1..=50).map(f64::from).collect();
        assert_eq!(p99_ms(&mut fifty), 50.0);
        assert_eq!(p99_ms(&mut []), 0.0);
    }

    #[test]
    fn traffic_is_deterministic_and_in_domain() {
        for (stream, wave) in [(0u64, 0u64), (1, 0), (0, 1), (999_983, 17)] {
            let (q, o) = traffic(0x50AC, stream, wave);
            assert_eq!((q, o), traffic(0x50AC, stream, wave));
            assert!((0.0..1.0).contains(&q));
            assert!(o == 3 || o == 7);
        }
        // Different coordinates draw different traffic.
        assert_ne!(traffic(0x50AC, 0, 0), traffic(0x50AC, 1, 0));
        assert_ne!(traffic(0x50AC, 0, 0), traffic(0x50AC, 0, 1));
    }

    #[test]
    fn soak_sides_agree_and_are_deterministic() {
        let wrapper = soak_wrapper();
        let cfg = SoakConfig {
            streams: 64,
            waves: 12,
            shards: 3,
            threads: 2,
            seed: 0x50AC,
            scenario: SoakScenario::Uniform,
        };
        let outcome = run_with_wrapper(&wrapper, &cfg);
        assert!(outcome.bit_identical, "sharded diverged from plain engine");
        assert_eq!(outcome.steps, 64 * 12);
        assert!(outcome.engine.total_s > 0.0 && outcome.sharded.total_s > 0.0);
        assert!(outcome.engine.p99_wave_ms > 0.0 && outcome.sharded.p99_wave_ms > 0.0);
        // The fingerprint is a pure function of the traffic and the model.
        let again = run_with_wrapper(&wrapper, &cfg);
        assert_eq!(outcome.engine.fingerprint, again.engine.fingerprint);
        assert_eq!(outcome.sharded.fingerprint, again.sharded.fingerprint);
        // A different cohort fingerprints differently (the fold sees data).
        let other = run_with_wrapper(
            &wrapper,
            &SoakConfig {
                seed: 0x50AD,
                ..cfg
            },
        );
        assert_ne!(outcome.engine.fingerprint, other.engine.fingerprint);
    }

    #[test]
    fn scenario_names_roundtrip() {
        for scenario in SoakScenario::all() {
            assert_eq!(SoakScenario::from_name(scenario.name()), Some(scenario));
        }
        assert_eq!(
            SoakScenario::from_name("regime"),
            Some(SoakScenario::RegimeSwitch)
        );
        assert_eq!(SoakScenario::from_name("nope"), None);
        assert_eq!(SoakScenario::default(), SoakScenario::Uniform);
    }

    #[test]
    fn scenario_traffic_is_pure_and_in_domain() {
        for scenario in SoakScenario::all() {
            for (stream, wave) in [(0u64, 0u64), (1, 0), (0, 1), (5, 9), (999_983, 17)] {
                let drawn = scenario_traffic(scenario, 0x50AC, stream, wave, 20);
                assert_eq!(drawn, scenario_traffic(scenario, 0x50AC, stream, wave, 20));
                let (q, o) = drawn;
                assert!((0.0..=1.0).contains(&q), "{scenario:?} q out of range");
                assert!(o == 3 || o == 7, "{scenario:?} outcome out of domain");
            }
        }
    }

    #[test]
    fn scenario_traffic_matches_family_semantics() {
        let seed = 0x50AC;
        let waves = 40u64;
        // Regime switch: post-switch waves carry a higher failure share,
        // and flipped streams report class 3 on every post-switch wave.
        let failure_share = |lo: u64, hi: u64| {
            let mut failed = 0usize;
            let mut total = 0usize;
            for stream in 0..200u64 {
                for wave in lo..hi {
                    let (_, o) =
                        scenario_traffic(SoakScenario::RegimeSwitch, seed, stream, wave, waves);
                    failed += usize::from(o == 3);
                    total += 1;
                }
            }
            failed as f64 / total as f64
        };
        assert!(failure_share(waves / 2, waves) > failure_share(0, waves / 2) + 0.15);
        // Dropout + heavy tails perturb only the reading, never the outcome.
        for scenario in [SoakScenario::Dropout, SoakScenario::HeavyTails] {
            let mut q_changed = 0usize;
            for stream in 0..100u64 {
                for wave in 0..waves {
                    let (q, o) = scenario_traffic(scenario, seed, stream, wave, waves);
                    let (base_q, base_o) = traffic(seed, stream, wave);
                    assert_eq!(o, base_o, "{scenario:?} touched an outcome");
                    q_changed += usize::from(q.to_bits() != base_q.to_bits());
                }
            }
            assert!(q_changed > 0, "{scenario:?} never perturbed a reading");
        }
        // Multi-source: primaries replay the primary stream's base draw.
        for stream in (0..99u64).step_by(3) {
            assert_eq!(
                scenario_traffic(SoakScenario::MultiSource, seed, stream, 7, waves),
                traffic(seed, stream, 7),
            );
        }
        // Mixed: the per-stream partition reproduces each member family.
        let mut families_seen = 0usize;
        for scenario in [
            SoakScenario::Uniform,
            SoakScenario::Dropout,
            SoakScenario::RegimeSwitch,
            SoakScenario::HeavyTails,
            SoakScenario::MultiSource,
        ] {
            let member = (0..500u64).find(|&stream| {
                (0..waves).all(|wave| {
                    scenario_traffic(SoakScenario::Mixed, seed, stream, wave, waves)
                        == scenario_traffic(scenario, seed, stream, wave, waves)
                })
            });
            families_seen += usize::from(member.is_some());
        }
        assert_eq!(families_seen, 5, "mixed cohort misses a member family");
    }

    #[test]
    fn scenario_soak_fingerprints_are_shard_and_thread_invariant() {
        let wrapper = soak_wrapper();
        let cfg = SoakConfig {
            streams: 60,
            waves: 16,
            shards: 3,
            threads: 2,
            seed: 0x50AC,
            scenario: SoakScenario::Mixed,
        };
        let outcome = run_with_wrapper(&wrapper, &cfg);
        assert!(
            outcome.bit_identical,
            "mixed scenario diverged across engines"
        );
        let other = run_with_wrapper(
            &wrapper,
            &SoakConfig {
                shards: 7,
                threads: 4,
                ..cfg
            },
        );
        assert!(other.bit_identical);
        assert_eq!(
            outcome.engine.fingerprint, other.engine.fingerprint,
            "scenario traffic must not depend on the shard/thread shape"
        );
        assert_eq!(outcome.sharded.fingerprint, other.sharded.fingerprint);
        // Different scenarios fingerprint differently (the overlay bites).
        let uniform = run_with_wrapper(
            &wrapper,
            &SoakConfig {
                scenario: SoakScenario::Uniform,
                ..cfg
            },
        );
        assert_ne!(uniform.engine.fingerprint, outcome.engine.fingerprint);
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let wrapper = soak_wrapper();
        let outcome = run_with_wrapper(
            &wrapper,
            &SoakConfig {
                streams: 0,
                waves: 0,
                shards: 0,
                threads: 0,
                seed: 1,
                scenario: SoakScenario::Uniform,
            },
        );
        assert_eq!(outcome.steps, 1);
        assert!(outcome.bit_identical);
    }
}
