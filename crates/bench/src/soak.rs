//! Service-soak harness for the sharded serving front end: replays a
//! large simulated stream cohort through the plain multi-stream
//! [`TauwEngine`] and the sharded [`ShardedEngine`], recording throughput
//! (steps/s), p99 per-wave latency, and a bit-identity verdict between
//! the two sides.
//!
//! Traffic is derived per `(stream, wave)` from a [`SplitMix64`] hash of
//! the two ids, so a 1M-stream cohort needs no stored series — memory is
//! bounded by the engines' own per-stream buffers, which the harness
//! bounds to a [`BUFFER_WINDOW`]-step sliding window so cohort memory
//! stays flat in the wave count.
//!
//! The identity verdict compares an order-sensitive FNV-1a fingerprint
//! folded over the raw bits of every served output field on each side;
//! the exhaustive per-step bitwise guarantees live in the core sharded
//! tests and the workspace determinism/property suites — the soak verdict
//! is the always-on end-to-end check at cohort scale.

use std::time::Instant;
use tauw_core::calibration::CalibrationOptions;
use tauw_core::engine::{StreamId, TauwEngine};
use tauw_core::error::CoreError;
use tauw_core::sharded::ShardedEngine;
use tauw_core::tauw::{TauwBuilder, TauwStep, TimeseriesAwareWrapper};
use tauw_core::training::{TrainingSeries, TrainingStep};
use tauw_core::wrapper::WrapperBuilder;
use tauw_stats::bootstrap::SplitMix64;

/// Sliding-window bound applied to every stream buffer so cohort memory
/// is `O(streams × window)`, independent of the wave count.
pub const BUFFER_WINDOW: usize = 64;

/// Cohort shape for one soak run. All counts are clamped to ≥ 1.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Concurrent streams in the cohort (one step per stream per wave).
    pub streams: usize,
    /// Waves replayed.
    pub waves: usize,
    /// Shard count of the sharded side.
    pub shards: usize,
    /// Thread budget for both sides.
    pub threads: usize,
    /// Traffic seed.
    pub seed: u64,
}

impl SoakConfig {
    fn normalized(mut self) -> Self {
        self.streams = self.streams.max(1);
        self.waves = self.waves.max(1);
        self.shards = self.shards.max(1);
        self.threads = self.threads.max(1);
        self
    }
}

/// Timing and identity evidence from one side of the soak comparison.
#[derive(Debug, Clone, Copy)]
pub struct SideStats {
    /// Total wall time spent inside the wave dispatch, seconds.
    pub total_s: f64,
    /// p99 per-wave latency (nearest-rank over all waves), milliseconds.
    pub p99_wave_ms: f64,
    /// Order-sensitive FNV-1a fingerprint over the raw bits of every
    /// served output field.
    pub fingerprint: u64,
}

/// Outcome of a soak run: both sides plus the cross-side verdict.
#[derive(Debug, Clone, Copy)]
pub struct SoakOutcome {
    /// Total steps served per side (`streams × waves`).
    pub steps: u64,
    /// The plain multi-stream engine side.
    pub engine: SideStats,
    /// The sharded front-end side.
    pub sharded: SideStats,
    /// Whether both sides' output fingerprints matched.
    pub bit_identical: bool,
}

/// Trains the small deterministic wrapper the soak cohort is served from
/// (one quality factor, outcomes drawn from `{3, 7}`).
pub fn soak_wrapper() -> TimeseriesAwareWrapper {
    let make_series = |n: usize, seed: u64| -> Vec<TrainingSeries> {
        let mut rng = SplitMix64::new(seed);
        (0..n)
            .map(|_| {
                let q = rng.next_f64();
                let bias = if rng.next_f64() < 0.5 { 1.3 } else { 0.5 };
                let steps = (0..10)
                    .map(|_| {
                        let failed = rng.next_f64() < (q * bias).min(0.95);
                        TrainingStep {
                            quality_factors: vec![q],
                            outcome: if failed { 3 } else { 7 },
                        }
                    })
                    .collect();
                TrainingSeries {
                    true_outcome: 7,
                    steps,
                }
            })
            .collect()
    };
    let train = make_series(300, 0x50AC_0001);
    let calib = make_series(300, 0x50AC_0002);
    let mut wb = WrapperBuilder::new();
    wb.max_depth(3).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    builder
        .fit(vec!["q".into()], &train, &calib)
        .expect("soak wrapper fits")
}

/// Deterministic per-`(stream, wave)` traffic: a quality factor in
/// `[0, 1)` and an outcome from the trained domain `{3, 7}`.
fn traffic(seed: u64, stream: u64, wave: u64) -> (f64, u32) {
    let mut rng = SplitMix64::new(
        seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ wave.wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    let q = rng.next_f64();
    let failed = rng.next_f64() < (q * 0.9).min(0.95);
    (q, if failed { 3 } else { 7 })
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(hash: &mut u64, word: u64) {
    for byte in word.to_le_bytes() {
        *hash = (*hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
}

fn fold_step(hash: &mut u64, step: &TauwStep) {
    fold(hash, u64::from(step.fused_outcome));
    fold(hash, step.uncertainty.to_bits());
    fold(hash, step.stateless_uncertainty.to_bits());
    fold(hash, step.adapted_uncertainty.to_bits());
    fold(hash, step.series_length as u64);
    fold(hash, step.taqf.ratio.to_bits());
    fold(hash, step.taqf.length.to_bits());
    fold(hash, step.taqf.unique_outcomes.to_bits());
    fold(hash, step.taqf.cumulative_certainty.to_bits());
}

/// Nearest-rank p99 of the recorded per-wave latencies, milliseconds.
fn p99_ms(latencies: &mut [f64]) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let rank = ((latencies.len() as f64) * 0.99).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

/// Replays the cohort through one side. Batch construction is untimed;
/// only the wave dispatch itself contributes to the latency samples.
fn run_side<F>(cfg: &SoakConfig, mut step_wave: F) -> Result<SideStats, CoreError>
where
    F: FnMut(&[(StreamId, &[f64], u32)]) -> Result<Vec<TauwStep>, CoreError>,
{
    let mut features = vec![0.0f64; cfg.streams];
    let mut outcomes = vec![0u32; cfg.streams];
    let mut latencies = Vec::with_capacity(cfg.waves);
    let mut hash = FNV_OFFSET;
    let mut total_s = 0.0;
    for wave in 0..cfg.waves {
        for (i, (feature, outcome)) in features.iter_mut().zip(&mut outcomes).enumerate() {
            let (q, o) = traffic(cfg.seed, i as u64, wave as u64);
            *feature = q;
            *outcome = o;
        }
        let batch: Vec<(StreamId, &[f64], u32)> = features
            .iter()
            .zip(&outcomes)
            .enumerate()
            .map(|(i, (q, &o))| (StreamId(i as u64), std::slice::from_ref(q), o))
            .collect();
        let start = Instant::now();
        let results = step_wave(&batch)?;
        let wave_s = start.elapsed().as_secs_f64();
        total_s += wave_s;
        latencies.push(wave_s * 1e3);
        for step in &results {
            fold_step(&mut hash, step);
        }
    }
    Ok(SideStats {
        total_s,
        p99_wave_ms: p99_ms(&mut latencies),
        fingerprint: hash,
    })
}

/// Runs the soak comparison with a freshly trained [`soak_wrapper`].
pub fn run(cfg: &SoakConfig) -> SoakOutcome {
    run_with_wrapper(&soak_wrapper(), cfg)
}

/// Runs the soak comparison against an already trained wrapper: the
/// plain engine first, then the sharded front end, on identical traffic.
pub fn run_with_wrapper(wrapper: &TimeseriesAwareWrapper, cfg: &SoakConfig) -> SoakOutcome {
    let cfg = cfg.normalized();
    let mut engine = TauwEngine::new(wrapper.clone());
    engine.threads(cfg.threads).buffer_capacity(BUFFER_WINDOW);
    let engine_stats =
        run_side(&cfg, |batch| engine.step_many_borrowed(batch)).expect("plain engine serves");
    drop(engine);
    let mut sharded = ShardedEngine::new(wrapper.clone(), cfg.shards);
    sharded.threads(cfg.threads).buffer_capacity(BUFFER_WINDOW);
    let sharded_stats =
        run_side(&cfg, |batch| sharded.step_many_borrowed(batch)).expect("sharded engine serves");
    SoakOutcome {
        steps: (cfg.streams * cfg.waves) as u64,
        engine: engine_stats,
        sharded: sharded_stats,
        bit_identical: engine_stats.fingerprint == sharded_stats.fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_is_nearest_rank() {
        let mut one = [3.5];
        assert_eq!(p99_ms(&mut one), 3.5);
        let mut hundred: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(p99_ms(&mut hundred), 99.0);
        let mut fifty: Vec<f64> = (1..=50).map(f64::from).collect();
        assert_eq!(p99_ms(&mut fifty), 50.0);
        assert_eq!(p99_ms(&mut []), 0.0);
    }

    #[test]
    fn traffic_is_deterministic_and_in_domain() {
        for (stream, wave) in [(0u64, 0u64), (1, 0), (0, 1), (999_983, 17)] {
            let (q, o) = traffic(0x50AC, stream, wave);
            assert_eq!((q, o), traffic(0x50AC, stream, wave));
            assert!((0.0..1.0).contains(&q));
            assert!(o == 3 || o == 7);
        }
        // Different coordinates draw different traffic.
        assert_ne!(traffic(0x50AC, 0, 0), traffic(0x50AC, 1, 0));
        assert_ne!(traffic(0x50AC, 0, 0), traffic(0x50AC, 0, 1));
    }

    #[test]
    fn soak_sides_agree_and_are_deterministic() {
        let wrapper = soak_wrapper();
        let cfg = SoakConfig {
            streams: 64,
            waves: 12,
            shards: 3,
            threads: 2,
            seed: 0x50AC,
        };
        let outcome = run_with_wrapper(&wrapper, &cfg);
        assert!(outcome.bit_identical, "sharded diverged from plain engine");
        assert_eq!(outcome.steps, 64 * 12);
        assert!(outcome.engine.total_s > 0.0 && outcome.sharded.total_s > 0.0);
        assert!(outcome.engine.p99_wave_ms > 0.0 && outcome.sharded.p99_wave_ms > 0.0);
        // The fingerprint is a pure function of the traffic and the model.
        let again = run_with_wrapper(&wrapper, &cfg);
        assert_eq!(outcome.engine.fingerprint, again.engine.fingerprint);
        assert_eq!(outcome.sharded.fingerprint, again.sharded.fingerprint);
        // A different cohort fingerprints differently (the fold sees data).
        let other = run_with_wrapper(
            &wrapper,
            &SoakConfig {
                seed: 0x50AD,
                ..cfg
            },
        );
        assert_ne!(outcome.engine.fingerprint, other.engine.fingerprint);
    }

    #[test]
    fn degenerate_configs_are_clamped() {
        let wrapper = soak_wrapper();
        let outcome = run_with_wrapper(
            &wrapper,
            &SoakConfig {
                streams: 0,
                waves: 0,
                shards: 0,
                threads: 0,
                seed: 1,
            },
        );
        assert_eq!(outcome.steps, 1);
        assert!(outcome.bit_identical);
    }
}
