//! Benchmarks the per-step fusion primitives (information fusion and the
//! three uncertainty-fusion rules), including the tie-breaking ablation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tauw_fusion::info::{CertaintyWeightedVote, InformationFusion, MajorityVote};
use tauw_fusion::uncertainty::UncertaintyFusion;

fn bench_information_fusion(c: &mut Criterion) {
    // A worst-case length-10 buffer with disagreement.
    let outcomes: Vec<u32> = vec![2, 2, 5, 2, 7, 2, 5, 2, 2, 5];
    let certainties: Vec<f64> = (0..10).map(|i| 0.9 - 0.05 * i as f64).collect();
    let mut group = c.benchmark_group("information_fusion_len10");
    group.bench_function("majority_vote", |b| {
        b.iter(|| MajorityVote.fuse(black_box(&outcomes), black_box(&certainties)));
    });
    group.bench_function("certainty_weighted_vote", |b| {
        b.iter(|| CertaintyWeightedVote.fuse(black_box(&outcomes), black_box(&certainties)));
    });
    group.finish();
}

fn bench_uncertainty_fusion(c: &mut Criterion) {
    let uncertainties: Vec<f64> = (0..10).map(|i| 0.01 + 0.03 * i as f64).collect();
    let mut group = c.benchmark_group("uncertainty_fusion_len10");
    for rule in UncertaintyFusion::ALL {
        group.bench_function(rule.name(), |b| {
            b.iter(|| rule.fuse(black_box(&uncertainties)).expect("non-empty"));
        });
    }
    group.finish();
}

fn bench_incremental_series(c: &mut Criterion) {
    // Fusing every prefix of a 30-step series — the actual runtime access
    // pattern of the timeseries buffer.
    let outcomes: Vec<u32> = (0..30).map(|i| if i % 7 == 0 { 5 } else { 2 }).collect();
    let certainties = vec![0.9; 30];
    c.bench_function("majority_vote_all_prefixes_30", |b| {
        b.iter(|| {
            for i in 1..=outcomes.len() {
                black_box(MajorityVote.fuse(&outcomes[..i], &certainties[..i]));
            }
        });
    });
}

criterion_group!(
    benches,
    bench_information_fusion,
    bench_uncertainty_fusion,
    bench_incremental_series
);
criterion_main!(benches);
