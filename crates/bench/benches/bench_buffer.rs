//! Benchmarks the per-step timeseries-buffer primitives that sit on every
//! serving step: ring push + incremental majority vote + O(1) taQF lookup,
//! against the O(window) full-recompute reference, at several window sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tauw_core::buffer::TimeseriesBuffer;
use tauw_core::taqf::TaqfVector;
use tauw_stats::bootstrap::SplitMix64;

/// Deterministic (outcome, uncertainty) traffic over a 3-class alphabet.
fn traffic(n: usize) -> Vec<(u32, f64)> {
    let mut rng = SplitMix64::new(0xB0FF);
    (0..n)
        .map(|_| (rng.next_index(3) as u32, rng.next_f64()))
        .collect()
}

/// A bounded buffer pre-filled to its window size.
fn filled(window: usize) -> TimeseriesBuffer {
    let mut buf = TimeseriesBuffer::bounded(window);
    for (o, u) in traffic(window) {
        buf.push(o, u);
    }
    buf
}

fn bench_step(c: &mut Criterion) {
    for window in [10usize, 100, 1000] {
        let steps = traffic(256);
        let mut group = c.benchmark_group(format!("buffer_step_window_{window}"));
        group.bench_function("incremental", |b| {
            let mut buf = filled(window);
            let mut i = 0usize;
            b.iter(|| {
                let (o, u) = steps[i % steps.len()];
                i += 1;
                buf.push(o, u);
                let fused = buf.fused_outcome().expect("non-empty");
                black_box(TaqfVector::compute(&buf, fused).expect("non-empty"))
            });
        });
        group.bench_function("recompute_reference", |b| {
            let mut buf = filled(window);
            let mut i = 0usize;
            b.iter(|| {
                let (o, u) = steps[i % steps.len()];
                i += 1;
                buf.push(o, u);
                let fused = buf.fused_outcome_reference().expect("non-empty");
                black_box(TaqfVector::compute_reference(&buf, fused).expect("non-empty"))
            });
        });
        group.finish();
    }
}

fn bench_snapshot_roundtrip(c: &mut Criterion) {
    let buf = filled(100);
    c.bench_function("buffer_snapshot_roundtrip_window_100", |b| {
        b.iter(|| {
            let json = buf.to_artifact_json().expect("serializes");
            black_box(TimeseriesBuffer::from_artifact_json(&json).expect("loads"))
        });
    });
}

criterion_group!(benches, bench_step, bench_snapshot_roundtrip);
criterion_main!(benches);
