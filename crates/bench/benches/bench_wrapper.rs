//! Benchmarks the wrapper's runtime path: the per-frame latency of a
//! `TauwSession::step` (the number that matters for deployment in a
//! perception loop) and the stateless estimate alone.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tauw_bench::small_context;

fn bench_runtime_path(c: &mut Criterion) {
    let ctx = small_context();
    let series = &ctx.test[0];

    c.bench_function("stateless_uncertainty_single_frame", |b| {
        let qf = &series.steps[0].quality_factors;
        b.iter(|| {
            ctx.tauw
                .stateless()
                .uncertainty(black_box(qf))
                .expect("estimate")
        });
    });

    c.bench_function("tauw_session_step", |b| {
        // One step including buffer push, fusion, taQF computation and
        // taQIM routing, amortized over a full 10-step series (sessions
        // are reset between iterations to keep the buffer bounded).
        b.iter(|| {
            let mut session = ctx.tauw.new_session();
            session.begin_series();
            for step in &series.steps {
                black_box(
                    session
                        .step(black_box(&step.quality_factors), black_box(step.outcome))
                        .expect("step"),
                );
            }
        });
    });

    c.bench_function("tauw_session_full_test_sweep", |b| {
        let subset: Vec<_> = ctx.test.iter().take(50).collect();
        b.iter(|| {
            let mut session = ctx.tauw.new_session();
            for series in &subset {
                session.begin_series();
                for step in &series.steps {
                    black_box(
                        session
                            .step(&step.quality_factors, step.outcome)
                            .expect("step"),
                    );
                }
            }
        });
    });
}

fn bench_explain(c: &mut Criterion) {
    let ctx = small_context();
    let qf = &ctx.test[0].steps[0].quality_factors;
    c.bench_function("wrapper_explain", |b| {
        b.iter(|| {
            ctx.tauw
                .stateless()
                .explain(black_box(qf))
                .expect("explanation")
        });
    });
}

criterion_group!(benches, bench_runtime_path, bench_explain);
criterion_main!(benches);
