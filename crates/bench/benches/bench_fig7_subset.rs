//! Benchmarks one cell of the Fig. 7 sweep: fitting and calibrating a
//! taQIM variant for a taQF subset on top of the shared stateless wrapper
//! and replay rows.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tauw_bench::small_context;
use tauw_core::taqf::{TaqfKind, TaqfSet};

fn bench_variant_fit(c: &mut Criterion) {
    let ctx = small_context();
    let mut group = c.benchmark_group("fig7_variant");
    group.sample_size(10);
    let pair = TaqfSet::from_kinds(&[TaqfKind::Ratio, TaqfKind::CumulativeCertainty]);
    group.bench_function("fit_ratio_certainty_variant", |b| {
        b.iter(|| black_box(ctx.tauw_variant(black_box(pair)).expect("variant")));
    });
    group.bench_function("fit_full_variant", |b| {
        b.iter(|| black_box(ctx.tauw_variant(TaqfSet::FULL).expect("variant")));
    });
    group.finish();
}

criterion_group!(benches, bench_variant_fit);
criterion_main!(benches);
