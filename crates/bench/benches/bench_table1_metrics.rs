//! Benchmarks regenerating Table I's metrics: the Brier decomposition and
//! overconfidence split over large forecast sets, for both grouping
//! strategies.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tauw_bench::{small_context, synthetic_forecasts};
use tauw_experiments::eval::{evaluate, Approach};
use tauw_stats::brier::{BrierDecomposition, Grouping};

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("brier_decomposition");
    for &n in &[10_000usize, 100_000] {
        let (forecasts, failures) = synthetic_forecasts(n);
        group.bench_with_input(BenchmarkId::new("unique_values", n), &n, |b, _| {
            b.iter(|| {
                BrierDecomposition::compute(
                    black_box(&forecasts),
                    black_box(&failures),
                    Grouping::UniqueValues { tolerance: 1e-9 },
                )
                .expect("decomposition")
            });
        });
        group.bench_with_input(BenchmarkId::new("quantile_bins_100", n), &n, |b, _| {
            b.iter(|| {
                BrierDecomposition::compute(
                    black_box(&forecasts),
                    black_box(&failures),
                    Grouping::QuantileBins(100),
                )
                .expect("decomposition")
            });
        });
    }
    group.finish();
}

fn bench_table1_end_to_end(c: &mut Criterion) {
    let ctx = small_context();
    let eval = evaluate(&ctx.tauw, &ctx.test).expect("evaluate");
    let mut group = c.benchmark_group("table1");
    group.sample_size(20);
    group.bench_function("all_six_rows", |b| {
        b.iter(|| {
            for approach in Approach::ALL {
                black_box(eval.decomposition(approach).expect("row"));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_decomposition, bench_table1_end_to_end);
criterion_main!(benches);
