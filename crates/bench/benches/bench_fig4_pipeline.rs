//! Benchmarks regenerating Fig. 4's data: the full test-set replay
//! (fusion + per-step rates) on a fixed trained wrapper.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tauw_bench::small_context;
use tauw_experiments::eval::evaluate;

fn bench_fig4(c: &mut Criterion) {
    let ctx = small_context();
    let mut group = c.benchmark_group("fig4");
    group.sample_size(20);
    group.bench_function("test_set_replay_and_rates", |b| {
        b.iter(|| {
            let eval = evaluate(black_box(&ctx.tauw), black_box(&ctx.test)).expect("evaluate");
            let rates = eval.misclassification_by_step();
            black_box((eval.isolated_misclassification(), rates))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
