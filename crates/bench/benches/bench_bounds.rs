//! Benchmarks the binomial confidence-bound computations — the per-leaf
//! calibration cost of the wrapper (ablation axis: bound method).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tauw_stats::binomial::{upper_bound, BoundMethod};

fn bench_bound_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_upper_bound");
    for method in BoundMethod::ALL {
        group.bench_function(method.name(), |b| {
            b.iter(|| {
                // A spread of leaf shapes seen during calibration.
                for &(k, n) in &[(0u64, 959u64), (3, 500), (40, 1200), (180, 200)] {
                    let u = upper_bound(
                        black_box(method),
                        black_box(k),
                        black_box(n),
                        black_box(0.999),
                    )
                    .expect("valid bound");
                    black_box(u);
                }
            });
        });
    }
    group.finish();
}

fn bench_special_functions(c: &mut Criterion) {
    c.bench_function("beta_quantile_0.999", |b| {
        b.iter(|| {
            tauw_stats::special::beta_quantile(black_box(0.999), black_box(4.0), black_box(997.0))
                .expect("valid quantile")
        });
    });
    c.bench_function("reg_inc_beta", |b| {
        b.iter(|| {
            tauw_stats::special::reg_inc_beta(black_box(4.0), black_box(997.0), black_box(0.01))
                .expect("valid value")
        });
    });
}

criterion_group!(benches, bench_bound_methods, bench_special_functions);
criterion_main!(benches);
