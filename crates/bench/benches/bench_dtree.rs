//! Benchmarks CART training and prediction, including the exact-vs-
//! histogram splitter ablation called out in `DESIGN.md` §5.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tauw_dtree::{Dataset, Splitter, TreeBuilder};
use tauw_stats::bootstrap::SplitMix64;

fn make_dataset(n: usize, n_features: usize) -> Dataset {
    let mut rng = SplitMix64::new(42);
    let mut ds = Dataset::with_anonymous_features(n_features, 2).expect("dataset");
    for _ in 0..n {
        let row: Vec<f64> = (0..n_features).map(|_| rng.next_f64()).collect();
        let risk: f64 = row.iter().take(3).sum::<f64>() / 3.0;
        let label = u32::from(rng.next_f64() < risk * 0.3);
        ds.push_row(&row, label).expect("row");
    }
    ds
}

fn bench_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_training");
    group.sample_size(10);
    for &n in &[2_000usize, 20_000] {
        let ds = make_dataset(n, 10);
        group.bench_with_input(BenchmarkId::new("exact", n), &ds, |b, ds| {
            b.iter(|| {
                TreeBuilder::new()
                    .splitter(Splitter::Exact)
                    .max_depth(8)
                    .fit(black_box(ds))
                    .expect("fit")
            });
        });
        group.bench_with_input(BenchmarkId::new("histogram64", n), &ds, |b, ds| {
            b.iter(|| {
                TreeBuilder::new()
                    .splitter(Splitter::Histogram { bins: 64 })
                    .max_depth(8)
                    .fit(black_box(ds))
                    .expect("fit")
            });
        });
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let ds = make_dataset(20_000, 10);
    let tree = TreeBuilder::new().max_depth(8).fit(&ds).expect("fit");
    let flat = tauw_dtree::FlatTree::from_tree(&tree);
    let query: Vec<f64> = (0..10).map(|i| i as f64 / 10.0).collect();
    c.bench_function("tree_predict_single", |b| {
        b.iter(|| tree.predict(black_box(&query)).expect("predict"));
    });
    c.bench_function("flat_predict_single", |b| {
        b.iter(|| flat.predict(black_box(&query)).expect("predict"));
    });
    c.bench_function("tree_leaf_routing_1k_rows", |b| {
        b.iter(|| {
            for i in 0..1000 {
                let mut q = query.clone();
                q[0] = (i % 100) as f64 / 100.0;
                black_box(tree.leaf_id(&q).expect("route"));
            }
        });
    });
    c.bench_function("flat_leaf_routing_1k_rows", |b| {
        b.iter(|| {
            for i in 0..1000 {
                let mut q = query.clone();
                q[0] = (i % 100) as f64 / 100.0;
                black_box(flat.predict_leaf_id(&q).expect("route"));
            }
        });
    });
    let batch: Vec<Vec<f64>> = (0..1000)
        .map(|i| {
            let mut q = query.clone();
            q[0] = (i % 100) as f64 / 100.0;
            q
        })
        .collect();
    let mut group = c.benchmark_group("flat_batch_routing_1k_rows");
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let mut out = Vec::with_capacity(batch.len());
            b.iter(|| {
                out.clear();
                flat.predict_leaf_ids_into(t, black_box(&batch), &mut out)
                    .expect("batch");
                black_box(out.len())
            });
        });
    }
    group.finish();
    // The level-synchronous wave kernel alone (no thread fan-out), against
    // the equivalent one-query-at-a-time loop over the same rows.
    let mut wave_out = vec![0u32; batch.len()];
    c.bench_function("flat_route_batch_major_1k_rows", |b| {
        b.iter(|| {
            flat.route_batch_into(black_box(&batch), &mut wave_out)
                .expect("wave");
            black_box(wave_out[0])
        });
    });
    c.bench_function("flat_route_per_sample_1k_rows", |b| {
        b.iter(|| {
            for q in &batch {
                black_box(flat.predict_leaf_id(black_box(q)).expect("route"));
            }
        });
    });
}

fn bench_pruning(c: &mut Criterion) {
    let ds = make_dataset(20_000, 10);
    let tree = TreeBuilder::new().max_depth(8).fit(&ds).expect("fit");
    let calib: Vec<Vec<f64>> = {
        let calib_ds = make_dataset(5_000, 10);
        (0..calib_ds.n_samples())
            .map(|i| calib_ds.row(i).to_vec())
            .collect()
    };
    let mut group = c.benchmark_group("pruning");
    group.sample_size(20);
    group.bench_function("calibration_driven_min200", |b| {
        b.iter(|| {
            let mut t = tree.clone();
            let counts = t
                .node_sample_counts(calib.iter().map(|r| r.as_slice()))
                .expect("counts");
            tauw_dtree::prune::prune_to_min_count(&mut t, &counts, 200).expect("prune");
            black_box(t.n_leaves())
        });
    });
    group.bench_function("cost_complexity_alpha_1e-3", |b| {
        b.iter(|| {
            let mut t = tree.clone();
            tauw_dtree::prune::prune_cost_complexity(&mut t, 1e-3);
            black_box(t.n_leaves())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_training, bench_prediction, bench_pruning);
criterion_main!(benches);
