//! Benchmarks the simulator substrate: situation sampling, series
//! generation (the data-generation cost of every experiment), tracking,
//! and model-artifact serialization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tauw_bench::small_context;
use tauw_core::tauw::TimeseriesAwareWrapper;
use tauw_sim::{SignClass, SignTracker, SimConfig, SimulatedDdm, SituationModel};

fn bench_situation_sampling(c: &mut Criterion) {
    let model = SituationModel::new();
    c.bench_function("situation_sample", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(model.sample(&mut rng)));
    });
}

fn bench_series_generation(c: &mut Criterion) {
    let ddm = SimulatedDdm::new(SimConfig::default());
    let model = SituationModel::new();
    c.bench_function("generate_series_30_frames", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let setting = model.sample(&mut rng);
        let class = SignClass::new(2).expect("valid class");
        b.iter(|| black_box(ddm.generate_series(1, class, &setting, &mut rng)));
    });
}

fn bench_tracking(c: &mut Criterion) {
    // 30 detections along one approach.
    let cfg = SimConfig::default();
    let detections: Vec<[f64; 2]> = (0..30)
        .map(|step| {
            let (x, y) = cfg.geometry.image_position_at(step, 3.0, 2.2);
            [x, y]
        })
        .collect();
    c.bench_function("kalman_track_30_frames", |b| {
        b.iter(|| {
            let mut tracker = SignTracker::with_noise(13.8, 2500.0, 9.0);
            for &d in &detections {
                black_box(tracker.observe(d));
            }
            tracker.track_count()
        });
    });
}

fn bench_artifact_roundtrip(c: &mut Criterion) {
    let ctx = small_context();
    c.bench_function("artifact_serialize", |b| {
        b.iter(|| black_box(ctx.tauw.to_artifact_json().expect("serialize")));
    });
    let json = ctx.tauw.to_artifact_json().expect("serialize");
    c.bench_function("artifact_deserialize", |b| {
        b.iter(|| {
            black_box(
                TimeseriesAwareWrapper::from_artifact_json(black_box(&json)).expect("deserialize"),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_situation_sampling,
    bench_series_generation,
    bench_tracking,
    bench_artifact_roundtrip
);
criterion_main!(benches);
