//! Choosing a taQF subset: the paper's RQ3 found that {ratio, certainty}
//! already matches the full four-factor model. This example fits several
//! subsets on one shared stateless wrapper and compares their Brier
//! scores, mirroring the Fig. 7 study through the public API.
//!
//! ```text
//! cargo run --release --example custom_taqf
//! ```

use tauw_suite::core::taqf::{TaqfKind, TaqfSet};
use tauw_suite::core::tauw::{replay, TauwBuilder};
use tauw_suite::core::training::{flatten_stateless, TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::core::CalibrationOptions;
use tauw_suite::sim::{DatasetBuilder, QualityObservation, SeriesRecord, SimConfig};
use tauw_suite::stats::brier::brier_score;

fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig::scaled(0.15);
    let data = DatasetBuilder::new(config, 5)
        .map_err(std::io::Error::other)?
        .build();
    let train = convert(&data.train);
    let calib = convert(&data.calib);
    let test = convert(&data.test);
    let names = QualityObservation::feature_names();

    // Fit the stateless wrapper once and replay the series once; every
    // subset variant reuses both.
    let calibration = CalibrationOptions {
        min_samples_per_leaf: 100,
        confidence: 0.999,
        ..Default::default()
    };
    let mut wrapper_builder = WrapperBuilder::new();
    wrapper_builder.max_depth(8).calibration(calibration);
    let stateless = wrapper_builder.fit(
        names.clone(),
        &flatten_stateless(&train),
        &flatten_stateless(&calib),
    )?;
    let train_replay = replay(&stateless, &train)?;
    let calib_replay = replay(&stateless, &calib)?;

    let subsets = [
        TaqfSet::EMPTY,
        TaqfSet::from_kinds(&[TaqfKind::Length]),
        TaqfSet::from_kinds(&[TaqfKind::UniqueOutcomes]),
        TaqfSet::from_kinds(&[TaqfKind::Ratio]),
        TaqfSet::from_kinds(&[TaqfKind::CumulativeCertainty]),
        TaqfSet::from_kinds(&[TaqfKind::Ratio, TaqfKind::CumulativeCertainty]),
        TaqfSet::FULL,
    ];
    println!("{:<36} {:>8}", "taQF subset", "brier");
    for set in subsets {
        let mut builder = TauwBuilder::new();
        let mut wb = WrapperBuilder::new();
        wb.max_depth(8).calibration(calibration);
        builder.wrapper(wb).taqf_set(set);
        let variant = builder.fit_reusing_stateless(
            stateless.clone(),
            &names,
            &train_replay,
            &calib_replay,
        )?;
        // Score the fused outcome's uncertainty on the test windows.
        let mut forecasts = Vec::new();
        let mut failures = Vec::new();
        let mut session = variant.new_session();
        for series in &test {
            session.begin_series();
            for step in &series.steps {
                let out = session.step(&step.quality_factors, step.outcome)?;
                forecasts.push(out.uncertainty);
                failures.push(out.fused_outcome != series.true_outcome);
            }
        }
        println!(
            "{:<36} {:>8.4}",
            set.label(),
            brier_score(&forecasts, &failures)?
        );
    }
    println!(
        "\npaper shape: ratio & certainty are the strongest factors; their pair is\n\
         already as good as the full set; length alone adds nothing. (Rankings are\n\
         noisy at this reduced scale — run `cargo run -p tauw-experiments --release\n\
         --bin fig7` for the paper-sized study.)"
    );
    Ok(())
}
