//! Train → save → deploy: the offline/online split of a real deployment.
//!
//! Training and calibration are development-time activities; the vehicle
//! only ever loads a frozen, reviewable JSON artifact. This example trains
//! a taUW, round-trips it through the artifact format, and shows that the
//! deployed copy produces bit-identical estimates.
//!
//! ```text
//! cargo run --release --example save_load_deploy
//! ```

use tauw_suite::core::tauw::{TauwBuilder, TimeseriesAwareWrapper};
use tauw_suite::core::training::{TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::core::CalibrationOptions;
use tauw_suite::sim::{DatasetBuilder, QualityObservation, SeriesRecord, SimConfig};

fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- development time ---
    let config = SimConfig::scaled(0.15);
    let data = DatasetBuilder::new(config, 42)
        .map_err(std::io::Error::other)?
        .build();
    let mut wrapper_builder = WrapperBuilder::new();
    wrapper_builder
        .max_depth(8)
        .calibration(CalibrationOptions {
            min_samples_per_leaf: 100,
            confidence: 0.999,
            ..Default::default()
        });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wrapper_builder);
    let trained = builder.fit(
        QualityObservation::feature_names(),
        &convert(&data.train),
        &convert(&data.calib),
    )?;

    let artifact_path = std::env::temp_dir().join("tauw_artifact.json");
    trained.save(&artifact_path)?;
    let size = std::fs::metadata(&artifact_path)?.len();
    println!(
        "artifact written: {} ({size} bytes)",
        artifact_path.display()
    );

    // The artifact is plain JSON a safety assessor can diff and review.
    let json = trained.to_artifact_json()?;
    println!(
        "artifact head: {}...",
        &json
            .chars()
            .take(120)
            .collect::<String>()
            .replace('\n', " ")
    );

    // --- deployment time ---
    let deployed = TimeseriesAwareWrapper::load(&artifact_path)?;
    println!(
        "loaded taUW: {} taQIM leaves, min uncertainty {:.4}",
        deployed.taqim().n_leaves(),
        deployed.min_uncertainty()
    );

    // Identical estimates, frame for frame.
    let test = convert(&data.test);
    let mut dev_session = trained.new_session();
    let mut car_session = deployed.new_session();
    let mut checked = 0;
    for series in test.iter().take(20) {
        dev_session.begin_series();
        car_session.begin_series();
        for step in &series.steps {
            let a = dev_session.step(&step.quality_factors, step.outcome)?;
            let b = car_session.step(&step.quality_factors, step.outcome)?;
            assert_eq!(
                a, b,
                "deployed artifact must reproduce training-time estimates"
            );
            checked += 1;
        }
    }
    println!("verified {checked} runtime estimates are bit-identical after the round-trip");
    std::fs::remove_file(&artifact_path)?;
    Ok(())
}
