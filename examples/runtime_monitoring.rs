//! Runtime verification with the simplex-style uncertainty monitor: how
//! much more of the drive can the AI channel serve (availability) at a
//! fixed residual-risk budget when uncertainty estimates are
//! timeseries-aware?
//!
//! The replay runs on the sharded multi-stream front end
//! ([`ShardedEngine`]): test windows are served in cohorts of concurrent
//! streams, each stream hash-routed to one of a few single-threaded engine
//! shards, each frame advancing the whole cohort through one batched wave
//! across all shards — the service deployment shape where one trained
//! wrapper monitors many vehicles at once. Sharding is pure routing, so
//! the estimates are bit-identical to per-series sessions (and to the
//! unsharded [`TauwEngine`]) at any shard count.
//!
//! ```text
//! cargo run --release --example runtime_monitoring
//! ```

use tauw_suite::core::monitor::{MonitorDecision, UncertaintyMonitor};
use tauw_suite::core::sharded::ShardedEngine;
use tauw_suite::core::tauw::TauwBuilder;
use tauw_suite::core::training::{TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::core::CalibrationOptions;
use tauw_suite::sim::{DatasetBuilder, QualityObservation, SeriesRecord, SimConfig};

/// How many streams the engine serves concurrently per cohort.
const COHORT_STREAMS: usize = 16;

/// How many engine shards the front end routes those streams across.
const N_SHARDS: usize = 4;

fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A third of the paper's scale: large enough for the calibrated
    // bounds to reach the ~1% regime that makes tight budgets meaningful.
    let config = SimConfig::scaled(0.3);
    let data = DatasetBuilder::new(config, 13)
        .map_err(std::io::Error::other)?
        .build();

    let mut wrapper_builder = WrapperBuilder::new();
    wrapper_builder
        .max_depth(8)
        .calibration(CalibrationOptions {
            min_samples_per_leaf: 150,
            confidence: 0.999,
            ..Default::default()
        });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wrapper_builder);
    let tauw = builder.fit(
        QualityObservation::feature_names(),
        &convert(&data.train),
        &convert(&data.calib),
    )?;

    let test = convert(&data.test);
    // The models serve through the compiled flat form: per step, each
    // lookup is one SoA traversal plus one leaf-ID-indexed bound read.
    let ta_qim = tauw
        .taqim()
        .as_tree()
        .expect("this example trains the default single-tree taQIM");
    let (stateless_flat, ta_flat) = (tauw.stateless().qim().flat(), ta_qim.flat());
    println!(
        "serving {} test windows on a {COHORT_STREAMS}-stream, {N_SHARDS}-shard engine",
        test.len()
    );
    println!(
        "flat serving forms: stateless QIM {} nodes / {} leaf IDs, taQIM {} nodes / {} leaf IDs\n",
        stateless_flat.n_nodes(),
        stateless_flat.n_leaves(),
        ta_flat.n_nodes(),
        ta_flat.n_leaves()
    );
    println!("uncertainty budget | channel      | availability | accepted-outcome error rate");
    println!("-------------------+--------------+--------------+----------------------------");
    // Serve the windows in cohorts of concurrent streams; within a cohort
    // every frame is one batched wave fanned across the shards. The
    // estimates do not depend on the monitor configuration, so one
    // inference pass feeds all budget × channel rows below.
    let mut engine = ShardedEngine::new(tauw, N_SHARDS);
    let cohort_waves = test
        .chunks(COHORT_STREAMS)
        .map(|cohort| engine.step_series_waves(cohort))
        .collect::<Result<Vec<_>, _>>()?;
    for budget in [0.15, 0.05, 0.02] {
        for use_tauw in [false, true] {
            let mut monitor = UncertaintyMonitor::new(budget);
            let mut accepted_failures = 0u64;
            let mut accepted = 0u64;
            for (cohort, waves) in test.chunks(COHORT_STREAMS).zip(&cohort_waves) {
                for (series, outs) in cohort.iter().zip(waves) {
                    for (j, out) in outs.iter().enumerate() {
                        let (uncertainty, failed) = if use_tauw {
                            (out.uncertainty, out.fused_outcome != series.true_outcome)
                        } else {
                            (out.stateless_uncertainty, series.is_failure(j))
                        };
                        if monitor.assess(uncertainty) == MonitorDecision::Accept {
                            accepted += 1;
                            if failed {
                                accepted_failures += 1;
                            }
                        }
                    }
                }
            }
            let stats = monitor.stats();
            println!(
                "{:>18.2} | {:<12} | {:>11.1}% | {:.3}% ({} of {})",
                budget,
                if use_tauw {
                    "taUW + IF"
                } else {
                    "stateless UW"
                },
                stats.availability() * 100.0,
                100.0 * accepted_failures as f64 / accepted.max(1) as f64,
                accepted_failures,
                accepted
            );
        }
    }
    println!(
        "\nreading guide: at the same budget, the timeseries-aware estimates keep more\n\
         outcomes available while the accepted-outcome error rate stays below the budget\n\
         (the bounds are calibrated at 99.9% confidence)."
    );
    Ok(())
}
