//! Scope compliance: the uncertainty wrapper framework's third pillar.
//!
//! The paper's study stays inside the target application scope (TAS) and
//! omits the scope model; this example shows the full framework: a wrapper
//! with a boundary-check scope model flags inputs outside the conditions it
//! was calibrated for (think: the vehicle crosses into a country with
//! different signage, or a sensor starts reporting garbage) and inflates
//! the combined uncertainty accordingly.
//!
//! ```text
//! cargo run --release --example scope_compliance
//! ```

use tauw_suite::core::training::flatten_stateless;
use tauw_suite::core::training::{TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::core::CalibrationOptions;
use tauw_suite::sim::{DatasetBuilder, DeficitKind, QualityObservation, SeriesRecord, SimConfig};

fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig::scaled(0.15);
    let data = DatasetBuilder::new(config, 21)
        .map_err(std::io::Error::other)?
        .build();

    // Stateless wrapper WITH a scope model learned from the training
    // inputs (2% padding beyond the observed feature ranges).
    let mut builder = WrapperBuilder::new();
    builder
        .max_depth(8)
        .calibration(CalibrationOptions {
            min_samples_per_leaf: 100,
            confidence: 0.999,
            ..Default::default()
        })
        .with_scope_model(0.02);
    let wrapper = builder.fit(
        QualityObservation::feature_names(),
        &flatten_stateless(&convert(&data.train)),
        &flatten_stateless(&convert(&data.calib)),
    )?;

    // An ordinary in-scope frame from the test split.
    let test = convert(&data.test);
    let in_scope = test[0].steps[2].quality_factors.clone();

    // Out-of-scope inputs the TAS never contained.
    let mut sensor_fault = in_scope.clone();
    sensor_fault[DeficitKind::Rain as usize] = 0.999; // stuck-at-max rain sensor
    sensor_fault[9] = 3000.0; // absurd bounding-box size
    let mut mild_drift = in_scope.clone();
    mild_drift[9] *= 1.3; // detector reporting slightly larger boxes

    println!("case          in-scope  compliance  u(quality)  u(combined)  violations");
    for (name, qf) in [
        ("nominal", &in_scope),
        ("mild drift", &mild_drift),
        ("sensor fault", &sensor_fault),
    ] {
        let estimate = wrapper.estimate(qf)?;
        let explanation = wrapper.explain(qf)?;
        let scope = explanation.scope.expect("scope model attached");
        println!(
            "{:<12}  {:<8}  {:>10.4}  {:>10.4}  {:>11.4}  {:?}",
            name,
            scope.in_scope,
            estimate.scope_compliance,
            estimate.quality_uncertainty,
            estimate.combined_uncertainty,
            scope
                .violations
                .iter()
                .map(|&i| wrapper.feature_names()[i].as_str())
                .collect::<Vec<_>>()
        );
    }
    println!(
        "\nreading guide: outside the TAS the quality impact model's bound is no longer\n\
         trustworthy on its own; the combined uncertainty 1 - compliance * (1 - u)\n\
         escalates toward 1, which a runtime monitor turns into a fallback decision."
    );
    Ok(())
}
