//! Full TSR runtime pipeline: camera events from a drive past several
//! physical signs stream through the Kalman tracker, which decides when a
//! new timeseries begins (clearing the wrapper's buffer) and coasts
//! through detector dropouts, while the taUW produces fused outcomes with
//! dependable uncertainty.
//!
//! This mirrors the paper's Fig. 2 architecture end to end: tracking →
//! timeseries buffer → information fusion → taQFs → taQIM.
//!
//! ```text
//! cargo run --release --example tsr_pipeline
//! ```

use tauw_suite::core::tauw::TauwBuilder;
use tauw_suite::core::training::{TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::core::CalibrationOptions;
use tauw_suite::sim::drive::DriveEvent;
use tauw_suite::sim::{
    DatasetBuilder, DriveScenario, QualityObservation, SeriesRecord, SignTracker, SimConfig,
    TrackEvent,
};

fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SimConfig::scaled(0.15);
    let data = DatasetBuilder::new(config.clone(), 7)
        .map_err(std::io::Error::other)?
        .build();

    let mut wrapper_builder = WrapperBuilder::new();
    wrapper_builder
        .max_depth(8)
        .calibration(CalibrationOptions {
            min_samples_per_leaf: 100,
            confidence: 0.999,
            ..Default::default()
        });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wrapper_builder);
    let tauw = builder.fit(
        QualityObservation::feature_names(),
        &convert(&data.train),
        &convert(&data.calib),
    )?;

    // A drive past four signs with occasional detector dropouts. The
    // tracker segments the event stream; the taUW session follows.
    let scenario = DriveScenario {
        n_signs: 4,
        dropout_prob: 0.05,
        ..Default::default()
    };
    let drive = scenario.generate(&config, 99);
    let mut tracker = SignTracker::with_noise(13.8, 2500.0, 9.0);
    let mut session = tauw.new_session();

    println!("tick  event        outcome  fused  u(taUW)  true");
    for (tick, event) in drive.events.iter().enumerate() {
        match event {
            DriveEvent::Dropout { .. } => {
                tracker.coast();
                println!("{tick:>4}  dropout");
            }
            DriveEvent::Detection(detection) => {
                let track_event = tracker.observe(detection.image_position);
                if track_event == TrackEvent::NewTrack {
                    session.begin_series();
                }
                let out = session.step(
                    &detection.frame.observation.feature_vector(),
                    u32::from(detection.frame.outcome.id()),
                )?;
                println!(
                    "{tick:>4}  {:<11}  {:>7}  {:>5}  {:>7.4}  {:>4}",
                    match track_event {
                        TrackEvent::NewTrack => "NEW-SERIES",
                        TrackEvent::Continued => "",
                    },
                    detection.frame.outcome.id(),
                    out.fused_outcome,
                    out.uncertainty,
                    detection.true_class.id()
                );
            }
        }
    }
    println!(
        "\ntracker segmented the stream into {} series (drive contains {})",
        tracker.track_count(),
        drive.n_signs()
    );
    Ok(())
}
