//! Quickstart: train a timeseries-aware uncertainty wrapper on a small
//! synthetic world and query it at runtime.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tauw_suite::core::tauw::TauwBuilder;
use tauw_suite::core::training::{TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::core::CalibrationOptions;
use tauw_suite::sim::{DatasetBuilder, QualityObservation, SeriesRecord, SimConfig};

/// Converts a simulator series into the wrapper's training format.
fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small synthetic TSR world (15% of the paper's size).
    let config = SimConfig::scaled(0.15);
    let data = DatasetBuilder::new(config, 42)
        .map_err(std::io::Error::other)?
        .build();
    println!(
        "world: {} train series, {} calibration windows, {} test windows",
        data.train.len(),
        data.calib.len(),
        data.test.len()
    );

    // 2. Train + calibrate the taUW (reduced calibration minimum for the
    //    small world; the paper uses 200 on ~110k calibration samples).
    let mut wrapper_builder = WrapperBuilder::new();
    wrapper_builder
        .max_depth(8)
        .calibration(CalibrationOptions {
            min_samples_per_leaf: 100,
            confidence: 0.999,
            ..Default::default()
        });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wrapper_builder);
    let tauw = builder.fit(
        QualityObservation::feature_names(),
        &convert(&data.train),
        &convert(&data.calib),
    )?;
    println!(
        "taQIM: {} leaves, lowest guaranteed uncertainty {:.4}",
        tauw.taqim().n_leaves(),
        tauw.min_uncertainty()
    );

    // 3. Run one test series through a runtime session.
    let test_series = convert(&data.test[..1]);
    let series = &test_series[0];
    let mut session = tauw.new_session();
    session.begin_series();
    println!("\nstep  outcome  fused  u(stateless)  u(taUW)");
    for step in &series.steps {
        let out = session.step(&step.quality_factors, step.outcome)?;
        println!(
            "{:>4}  {:>7}  {:>5}  {:>12.4}  {:>7.4}",
            out.series_length,
            step.outcome,
            out.fused_outcome,
            out.stateless_uncertainty,
            out.uncertainty
        );
    }
    println!("\nground truth class: {}", series.true_outcome);
    Ok(())
}
