#!/usr/bin/env python3
"""Gate the bench baselines: compare a fresh run against the committed file.

Usage: bench_regression.py COMMITTED_JSON LIVE_JSON

Fails (exit 1) on:
  * schema drift — either file does not carry the expected schema tag, or
    the live run emits a different row set / misses required columns;
  * correctness drift — any row in either file reports
    ``bit_identical: false`` (the flat/parallel path diverged from its
    reference);
  * throughput collapse — a live row's throughput falls below
    ``BENCH_TOLERANCE`` times the committed throughput on either side of
    the comparison;
  * parallel slowdown — a live serial-vs-parallel row (contender label
    ``parallel(N)``) whose speedup is at or below ``BENCH_SPEEDUP_FLOOR``.
    This check is host-aware: when the live run's ``host_parallelism`` is
    1, parallel rows measure scheduling overhead rather than scaling, so
    the expectation is skipped with a notice instead of failing;
  * flat trailing pointer — the ``qim_uncertainty_pointer_vs_flat`` row's
    flat (batch-major) side must not lose to the per-sample pointer walk
    (speedup >= ``BENCH_FLAT_FLOOR``, default 1.0). Host-aware like the
    parallel floor: skipped with a notice on 1-thread hosts, where the
    batched path cannot fan out;
  * missing tail latencies — soak rows (``soak_*``) must report positive
    ``baseline_p99_ms`` / ``contender_p99_ms`` per-wave tail latencies
    (other rows carry the columns but may leave them at 0.0).

``BENCH_TOLERANCE`` defaults to 0.2: CI runners differ from the host that
produced the committed baseline (the committed files come from a 1-CPU
container; see the ``note`` field), so only a ~5x collapse — a real
regression, not scheduler noise — fails the build.
``BENCH_SPEEDUP_FLOOR`` defaults to 1.0 (parallel must not lose to serial
on a genuinely multicore host).
"""

import json
import os
import sys

SCHEMA = "tauw-bench-baseline/v9"

# Rows whose contender is the batch-major flat serving path and whose
# baseline is the per-sample pointer walk: flat must not trail pointer on
# a host where the batched fan-out can actually engage.
FLAT_FLOOR_ROWS = ("qim_uncertainty_pointer_vs_flat",)
REQUIRED_COLUMNS = (
    "name",
    "work_units",
    "baseline_label",
    "contender_label",
    "baseline_ms",
    "contender_ms",
    "speedup",
    "baseline_per_s",
    "contender_per_s",
    "baseline_p99_ms",
    "contender_p99_ms",
    "bit_identical",
)


def fail(msg: str) -> None:
    print(f"bench-regression: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema {doc.get('schema')!r} != expected {SCHEMA!r}")
    if not doc.get("results"):
        fail(f"{path}: empty results")
    for row in doc["results"]:
        missing = [c for c in REQUIRED_COLUMNS if c not in row]
        if missing:
            fail(f"{path}: row {row.get('name')!r} misses columns {missing}")
        if row["bit_identical"] is not True:
            fail(f"{path}: row {row['name']!r} reports bit_identical: false")
        for col in ("baseline_p99_ms", "contender_p99_ms"):
            if row[col] < 0:
                fail(f"{path}: row {row['name']!r} has negative {col}")
            if row["name"].startswith("soak_") and not row[col] > 0:
                fail(
                    f"{path}: soak row {row['name']!r} must report a "
                    f"positive {col} (got {row[col]!r})"
                )
    return doc


def main() -> None:
    if len(sys.argv) != 3:
        fail("usage: bench_regression.py COMMITTED_JSON LIVE_JSON")
    committed_path, live_path = sys.argv[1], sys.argv[2]
    tolerance = float(os.environ.get("BENCH_TOLERANCE", "0.2"))
    committed = load(committed_path)
    live = load(live_path)

    committed_rows = {r["name"]: r for r in committed["results"]}
    live_rows = {r["name"]: r for r in live["results"]}
    if set(committed_rows) != set(live_rows):
        fail(
            f"row set drift: committed {sorted(committed_rows)} vs "
            f"live {sorted(live_rows)}"
        )
    if live.get("smoke") != committed.get("smoke"):
        fail(
            f"smoke flag mismatch: committed {committed.get('smoke')} vs "
            f"live {live.get('smoke')} (compare like-for-like scales)"
        )
    if live.get("threads_parallel") != committed.get("threads_parallel"):
        fail(
            f"thread budget mismatch: committed parallel rows use "
            f"{committed.get('threads_parallel')} threads, live uses "
            f"{live.get('threads_parallel')} (rerun without --threads overrides)"
        )

    speedup_floor = float(os.environ.get("BENCH_SPEEDUP_FLOOR", "1.0"))
    live_cores = int(live.get("host_parallelism", 1))
    worst = 1e9
    for name, want in committed_rows.items():
        got = live_rows[name]
        for label_col in ("baseline_label", "contender_label"):
            if want[label_col] != got[label_col]:
                fail(
                    f"{name}: {label_col} drift — committed "
                    f"{want[label_col]!r} vs live {got[label_col]!r}"
                )
        if "parallel(" in got["contender_label"]:
            if live_cores <= 1:
                print(
                    f"  {name}: skipping speedup floor (live host has "
                    f"{live_cores} hardware thread(s); parallel rows measure "
                    f"overhead, not scaling)"
                )
            elif got["speedup"] <= speedup_floor:
                fail(
                    f"{name}: parallel speedup {got['speedup']:.2f} is at or "
                    f"below the floor {speedup_floor} on a {live_cores}-thread "
                    f"host"
                )
        if name in FLAT_FLOOR_ROWS:
            flat_floor = float(os.environ.get("BENCH_FLAT_FLOOR", "1.0"))
            if live_cores <= 1:
                print(
                    f"  {name}: skipping flat-vs-pointer floor (live host has "
                    f"{live_cores} hardware thread(s); the batch-major path "
                    f"cannot fan out)"
                )
            elif got["speedup"] < flat_floor:
                fail(
                    f"{name}: flat (batch-major) speedup {got['speedup']:.2f} "
                    f"trails the pointer baseline floor {flat_floor} on a "
                    f"{live_cores}-thread host"
                )
        for side in ("baseline_per_s", "contender_per_s"):
            if want[side] <= 0:
                fail(f"{name}: committed {side} is non-positive")
            ratio = got[side] / want[side]
            worst = min(worst, ratio)
            label = want[side.replace("_per_s", "_label")]
            print(
                f"  {name} [{label}]: committed {want[side]:.0f}/s, "
                f"live {got[side]:.0f}/s ({ratio:.2f}x)"
            )
            if ratio < tolerance:
                fail(
                    f"{name} [{label}]: live throughput {got[side]:.0f}/s is "
                    f"below {tolerance} x committed {want[side]:.0f}/s"
                )
    print(
        f"bench-regression: OK ({len(committed_rows)} rows, worst "
        f"live/committed throughput ratio {worst:.2f}, tolerance {tolerance})"
    )


if __name__ == "__main__":
    main()
