//! # tauw-suite
//!
//! Meta-crate for the reproduction of *"Timeseries-aware Uncertainty
//! Wrappers for Uncertainty Quantification of Information-Fusion-Enhanced AI
//! Models based on Machine Learning"* (Groß et al., DSN 2023 / VERDI).
//!
//! This crate re-exports the workspace's public API under one roof so that
//! downstream users (and the `examples/` binaries) can depend on a single
//! crate:
//!
//! * [`stats`] — binomial confidence bounds, Brier decomposition,
//!   calibration diagnostics ([`tauw_stats`]).
//! * [`dtree`] — from-scratch CART decision trees ([`tauw_dtree`]).
//! * [`sim`] — the synthetic traffic-sign-recognition world
//!   ([`tauw_sim`]).
//! * [`fusion`] — information fusion and uncertainty-fusion baselines
//!   ([`tauw_fusion`]).
//! * [`core`] — the uncertainty wrapper framework and its
//!   timeseries-aware extension ([`tauw_core`]).
//!
//! See `README.md` for a guided tour and `examples/quickstart.rs` for the
//! shortest end-to-end pipeline.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use tauw_core as core;
pub use tauw_dtree as dtree;
pub use tauw_fusion as fusion;
pub use tauw_sim as sim;
pub use tauw_stats as stats;
