//! Reproducibility: the entire pipeline — world generation, training,
//! calibration, runtime estimates — is a pure function of (config, seed).

use tauw_suite::core::calibration::CalibrationOptions;
use tauw_suite::core::tauw::TauwBuilder;
use tauw_suite::core::training::{TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::sim::{DatasetBuilder, QualityObservation, SeriesRecord, SimConfig};

fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

fn pipeline_fingerprint(seed: u64) -> Vec<f64> {
    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, seed).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();
    let mut fingerprint = Vec::new();
    let mut session = tauw.new_session();
    for series in convert(&data.test).iter().take(20) {
        session.begin_series();
        for step in &series.steps {
            let out = session.step(&step.quality_factors, step.outcome).unwrap();
            fingerprint.push(out.uncertainty);
            fingerprint.push(out.stateless_uncertainty);
            fingerprint.push(f64::from(out.fused_outcome));
        }
    }
    fingerprint
}

#[test]
fn same_seed_reproduces_bit_identical_estimates() {
    let a = pipeline_fingerprint(31);
    let b = pipeline_fingerprint(31);
    assert_eq!(a, b, "pipeline must be bit-deterministic for a fixed seed");
}

#[test]
fn different_seeds_produce_different_worlds() {
    let a = pipeline_fingerprint(31);
    let b = pipeline_fingerprint(32);
    assert_ne!(a, b, "different seeds should change the generated world");
}

#[test]
fn persisted_wrapper_reproduces_bit_identical_estimates() {
    // Train offline, save, reload: the deployed artifact must yield
    // bit-identical estimates on a held-out series — the JSON roundtrip may
    // not perturb a single calibrated bound.
    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    let path = std::env::temp_dir().join(format!(
        "tauw_determinism_roundtrip_{}.json",
        std::process::id()
    ));
    tauw.save(&path).unwrap();
    let reloaded = tauw_suite::core::tauw::TimeseriesAwareWrapper::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        tauw, reloaded,
        "persisted model must be structurally identical"
    );

    let held_out = convert(&data.test);
    let mut fresh = tauw.new_session();
    let mut deployed = reloaded.new_session();
    let mut compared = 0usize;
    for series in held_out.iter().take(20) {
        fresh.begin_series();
        deployed.begin_series();
        for step in &series.steps {
            let a = fresh.step(&step.quality_factors, step.outcome).unwrap();
            let b = deployed.step(&step.quality_factors, step.outcome).unwrap();
            assert_eq!(
                a.uncertainty.to_bits(),
                b.uncertainty.to_bits(),
                "estimates diverged after persistence roundtrip"
            );
            assert_eq!(a, b);
            compared += 1;
        }
    }
    assert!(
        compared > 100,
        "held-out comparison covered only {compared} steps"
    );
}

#[test]
fn dataset_generation_is_order_independent_per_series() {
    // Each series derives its RNG stream from (master seed, series index),
    // so regenerating the same world twice yields identical series even
    // though the generator state is not shared.
    let config = SimConfig::scaled(0.03);
    let a = DatasetBuilder::new(config.clone(), 77).unwrap().build();
    let b = DatasetBuilder::new(config, 77).unwrap().build();
    assert_eq!(a.train.len(), b.train.len());
    for (x, y) in a.train.iter().zip(&b.train).step_by(7) {
        assert_eq!(x, y);
    }
    for (x, y) in a.test.iter().zip(&b.test).step_by(3) {
        assert_eq!(x, y);
    }
}
