//! Reproducibility: the entire pipeline — world generation, training,
//! calibration, runtime estimates — is a pure function of (config, seed).

use tauw_suite::core::calibration::CalibrationOptions;
use tauw_suite::core::tauw::{BackendSpec, TauwBuilder};
use tauw_suite::core::training::{TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::sim::{DatasetBuilder, QualityObservation, SeriesRecord, SimConfig};

fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

fn pipeline_fingerprint(seed: u64) -> Vec<f64> {
    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, seed).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();
    let mut fingerprint = Vec::new();
    let mut session = tauw.new_session();
    for series in convert(&data.test).iter().take(20) {
        session.begin_series();
        for step in &series.steps {
            let out = session.step(&step.quality_factors, step.outcome).unwrap();
            fingerprint.push(out.uncertainty);
            fingerprint.push(out.stateless_uncertainty);
            fingerprint.push(f64::from(out.fused_outcome));
        }
    }
    fingerprint
}

#[test]
fn same_seed_reproduces_bit_identical_estimates() {
    let a = pipeline_fingerprint(31);
    let b = pipeline_fingerprint(31);
    assert_eq!(a, b, "pipeline must be bit-deterministic for a fixed seed");
}

#[test]
fn different_seeds_produce_different_worlds() {
    let a = pipeline_fingerprint(31);
    let b = pipeline_fingerprint(32);
    assert_ne!(a, b, "different seeds should change the generated world");
}

#[test]
fn persisted_wrapper_reproduces_bit_identical_estimates() {
    // Train offline, save, reload: the deployed artifact must yield
    // bit-identical estimates on a held-out series — the JSON roundtrip may
    // not perturb a single calibrated bound.
    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    let path = std::env::temp_dir().join(format!(
        "tauw_determinism_roundtrip_{}.json",
        std::process::id()
    ));
    tauw.save(&path).unwrap();
    let reloaded = tauw_suite::core::tauw::TimeseriesAwareWrapper::load(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(
        tauw, reloaded,
        "persisted model must be structurally identical"
    );

    let held_out = convert(&data.test);
    let mut fresh = tauw.new_session();
    let mut deployed = reloaded.new_session();
    let mut compared = 0usize;
    for series in held_out.iter().take(20) {
        fresh.begin_series();
        deployed.begin_series();
        for step in &series.steps {
            let a = fresh.step(&step.quality_factors, step.outcome).unwrap();
            let b = deployed.step(&step.quality_factors, step.outcome).unwrap();
            assert_eq!(
                a.uncertainty.to_bits(),
                b.uncertainty.to_bits(),
                "estimates diverged after persistence roundtrip"
            );
            assert_eq!(a, b);
            compared += 1;
        }
    }
    assert!(
        compared > 100,
        "held-out comparison covered only {compared} steps"
    );
}

#[test]
fn parallel_fit_is_bit_identical_across_thread_counts() {
    // A dataset large enough that both the per-feature split fan-out and
    // the sibling-subtree fork actually engage (root children ≥ 1024).
    use tauw_suite::dtree::{Dataset, Splitter, TreeBuilder};
    let mut state = 0xD7EEu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut ds = Dataset::with_anonymous_features(6, 3).unwrap();
    for _ in 0..8000 {
        let row: Vec<f64> = (0..6).map(|_| next()).collect();
        let label = ((row[0] * 2.0 + row[3]) as u32).min(2);
        ds.push_row(&row, label).unwrap();
    }
    for splitter in [Splitter::Exact, Splitter::Histogram { bins: 32 }] {
        let serial = TreeBuilder::new()
            .splitter(splitter)
            .max_depth(8)
            .threads(1)
            .fit(&ds)
            .unwrap();
        let serial_json = serde_json::to_string(&serial).unwrap();
        let serial_text = tauw_suite::dtree::export::to_text(&serial);
        for threads in [2usize, 8] {
            let par = TreeBuilder::new()
                .splitter(splitter)
                .max_depth(8)
                .threads(threads)
                .fit(&ds)
                .unwrap();
            // Structural equality AND byte-for-byte identical exports: the
            // parallel build must reproduce the serial pre-order node
            // layout exactly, not just an equivalent predictor.
            assert_eq!(serial, par, "{splitter:?} threads={threads}");
            assert_eq!(
                serial_json,
                serde_json::to_string(&par).unwrap(),
                "{splitter:?} threads={threads}: serialized trees diverged"
            );
            assert_eq!(
                serial_text,
                tauw_suite::dtree::export::to_text(&par),
                "{splitter:?} threads={threads}: text exports diverged"
            );
        }
    }
}

#[test]
fn flat_tree_is_bit_identical_to_pointer_tree_across_thread_counts() {
    // The compiled SoA form must be a *lowering*, not a reinterpretation:
    // same leaves, same routing, same predictions, for every thread budget
    // of the batched path — proven via leaf-id mapping, bitwise prediction
    // equality, and byte-identical serde of the flat form after use.
    use tauw_suite::dtree::{Dataset, FlatTree, Splitter, TreeBuilder};
    let mut state = 0xF1A7u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut ds = Dataset::with_anonymous_features(6, 3).unwrap();
    for _ in 0..6000 {
        let row: Vec<f64> = (0..6).map(|_| next()).collect();
        let label = ((row[0] * 2.0 + row[3]) as u32).min(2);
        ds.push_row(&row, label).unwrap();
    }
    let queries: Vec<Vec<f64>> = (0..2000)
        .map(|_| (0..6).map(|_| next()).collect())
        .collect();
    for splitter in [Splitter::Exact, Splitter::Histogram { bins: 32 }] {
        let tree = TreeBuilder::new()
            .splitter(splitter)
            .max_depth(8)
            .fit(&ds)
            .unwrap();
        let flat = FlatTree::from_tree(&tree);
        let flat_json = serde_json::to_string(&flat).unwrap();
        let text = tauw_suite::dtree::export::to_text(&tree);
        assert_eq!(
            text.lines().count(),
            flat.n_nodes(),
            "{splitter:?}: flat form must carry exactly the exported nodes"
        );
        assert_eq!(
            flat.leaves().iter().map(|l| l.node_id).collect::<Vec<_>>(),
            tree.leaf_ids(),
            "{splitter:?}: leaf ids must follow the depth-first leaf order"
        );

        // Single-sample fast path vs the pointer tree, bit for bit.
        let serial: Vec<u32> = queries
            .iter()
            .map(|q| flat.predict_leaf_id(q).unwrap())
            .collect();
        for (q, &lid) in queries.iter().zip(&serial) {
            assert_eq!(flat.leaf(lid).node_id, tree.leaf_id(q).unwrap());
            assert_eq!(flat.predict(q).unwrap(), tree.predict(q).unwrap());
            let fp = flat.predict_proba(q).unwrap();
            let tp = tree.predict_proba(q).unwrap();
            assert_eq!(fp.len(), tp.len());
            for (a, b) in fp.iter().zip(&tp) {
                assert_eq!(a.to_bits(), b.to_bits(), "{splitter:?}");
            }
        }

        // Batched fan-out across thread budgets, in input order.
        for threads in [1usize, 2, 8] {
            assert_eq!(
                flat.predict_leaf_ids(threads, &queries).unwrap(),
                serial,
                "{splitter:?} threads={threads}"
            );
        }

        // The flat form itself is unchanged by serving and round-trips.
        assert_eq!(serde_json::to_string(&flat).unwrap(), flat_json);
        let back: FlatTree = serde_json::from_str(&flat_json).unwrap();
        assert_eq!(back, flat);
    }
}

#[test]
fn tauw_flat_serving_matches_pointer_reference_paths() {
    // The engine/session serve estimates through the flat form; the
    // pointer trees stay aboard as the reference. Recompute every estimate
    // through the reference path and demand bitwise equality, across
    // engine thread budgets 1/2/8.
    use tauw_suite::core::engine::{StreamId, StreamStep, TauwEngine};

    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    let streams: Vec<_> = convert(&data.test).into_iter().take(24).collect();
    let window_len = streams.iter().map(|s| s.steps.len()).max().unwrap();
    let mut compared = 0usize;
    for threads in [1usize, 2, 8] {
        let mut engine = TauwEngine::new(tauw.clone());
        engine.threads(threads);
        for j in 0..window_len {
            let mut positions = Vec::new();
            let mut batch = Vec::new();
            for (s, series) in streams.iter().enumerate() {
                if let Some(step) = series.steps.get(j) {
                    positions.push(s);
                    batch.push(StreamStep::new(
                        StreamId(s as u64),
                        step.quality_factors.clone(),
                        step.outcome,
                    ));
                }
            }
            for (&s, out) in positions.iter().zip(engine.step_many(&batch).unwrap()) {
                let qf = &streams[s].steps[j].quality_factors;
                // Stateless QIM: flat-served value vs pointer reference.
                let stateless_ref = tauw.stateless().qim().uncertainty_reference(qf).unwrap();
                assert_eq!(
                    out.stateless_uncertainty.to_bits(),
                    stateless_ref.to_bits(),
                    "stateless stream {s} step {j} threads={threads}"
                );
                // taQIM: rebuild the feature vector the step used and run
                // it through the pointer reference.
                let mut features = qf.clone();
                features.extend(tauw.taqf_set().select(&out.taqf));
                let ta_ref = tauw.taqim().uncertainty_reference(&features).unwrap();
                assert_eq!(
                    out.uncertainty.to_bits(),
                    ta_ref.to_bits(),
                    "taQIM stream {s} step {j} threads={threads}"
                );
                // And the shared per-step routine reproduces it exactly.
                let again = tauw.ta_uncertainty(qf, &out.taqf).unwrap();
                assert_eq!(out.uncertainty.to_bits(), again.to_bits());
                compared += 1;
            }
        }
    }
    assert!(compared > 300, "covered only {compared} comparisons");
}

#[test]
fn incremental_taqf_serving_matches_full_recompute_reference() {
    // The serving path reads O(1) running aggregates (ring buffer stats);
    // the O(window) scans stay aboard as the reference. Recompute every
    // per-step estimate through the reference path — majority-vote scan,
    // full taQF recompute, pointer-tree taQIM — and demand bitwise
    // equality, across engine thread budgets 1/2/8 and for both unbounded
    // and bounded (sliding-window) stream buffers.
    use tauw_suite::core::engine::{StreamId, StreamStep, TauwEngine};
    use tauw_suite::core::taqf::TaqfVector;

    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    let streams: Vec<_> = convert(&data.test).into_iter().take(24).collect();
    let window_len = streams.iter().map(|s| s.steps.len()).max().unwrap();
    let mut compared = 0usize;
    for capacity in [None, Some(4usize), Some(1)] {
        for threads in [1usize, 2, 8] {
            let mut engine = TauwEngine::new(tauw.clone());
            engine.threads(threads);
            if let Some(cap) = capacity {
                engine.buffer_capacity(cap);
            }
            for j in 0..window_len {
                let mut positions = Vec::new();
                let mut batch = Vec::new();
                for (s, series) in streams.iter().enumerate() {
                    if let Some(step) = series.steps.get(j) {
                        positions.push(s);
                        batch.push(StreamStep::new(
                            StreamId(s as u64),
                            step.quality_factors.clone(),
                            step.outcome,
                        ));
                    }
                }
                for (&s, out) in positions.iter().zip(engine.step_many(&batch).unwrap()) {
                    let ctx = format!("stream {s} step {j} threads={threads} cap={capacity:?}");
                    let buffer = engine.stream_buffer(StreamId(s as u64)).unwrap();
                    // Fused outcome: O(1) argmax == O(window) vote scan.
                    let fused_ref = buffer.fused_outcome_reference().unwrap();
                    assert_eq!(out.fused_outcome, fused_ref, "{ctx}");
                    // taQFs: running aggregates == full recompute, bitwise.
                    let taqf_ref = TaqfVector::compute_reference(buffer, fused_ref).unwrap();
                    for (fast, slow) in [
                        (out.taqf.ratio, taqf_ref.ratio),
                        (out.taqf.length, taqf_ref.length),
                        (out.taqf.unique_outcomes, taqf_ref.unique_outcomes),
                        (out.taqf.cumulative_certainty, taqf_ref.cumulative_certainty),
                    ] {
                        assert_eq!(fast.to_bits(), slow.to_bits(), "{ctx}");
                    }
                    // taQF2 reports the lifetime series length even when
                    // the window has evicted steps.
                    assert_eq!(out.taqf.length, (j + 1) as f64, "{ctx}");
                    assert_eq!(out.series_length, j + 1, "{ctx}");
                    // And the final estimate: reference features through
                    // the pointer-tree taQIM reference lookup.
                    let qf = &streams[s].steps[j].quality_factors;
                    let mut features = qf.clone();
                    features.extend(tauw.taqf_set().select(&taqf_ref));
                    let u_ref = tauw.taqim().uncertainty_reference(&features).unwrap();
                    assert_eq!(out.uncertainty.to_bits(), u_ref.to_bits(), "{ctx}");
                    compared += 1;
                }
            }
        }
    }
    assert!(compared > 1000, "covered only {compared} comparisons");
}

#[test]
fn forest_engine_serving_is_bit_identical_across_thread_budgets_and_to_reference() {
    // A forest taQIM (4 bootstrap members) served through the multi-stream
    // engine: training must be a pure function of the seed (the per-member
    // fits fan out over the thread budget), and every served estimate must
    // be bit-identical across engine thread budgets 1/2/8 AND to the
    // pointer-member reference recompute.
    use tauw_suite::core::engine::{StreamId, StreamStep, TauwEngine};

    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let fit = || {
        let mut builder = TauwBuilder::new();
        builder.wrapper(wb.clone()).backend(BackendSpec::Forest {
            n_trees: 4,
            seed: 0xF0E57,
        });
        builder
            .fit(
                QualityObservation::feature_names(),
                &convert(&data.train),
                &convert(&data.calib),
            )
            .unwrap()
    };
    let tauw = fit();
    assert_eq!(tauw.taqim().n_trees(), 4);
    assert_eq!(
        tauw,
        fit(),
        "forest training must be reproducible under the ambient thread budget"
    );

    let streams: Vec<_> = convert(&data.test).into_iter().take(24).collect();
    let window_len = streams.iter().map(|s| s.steps.len()).max().unwrap();
    let mut baseline: Option<Vec<tauw_suite::core::tauw::TauwStep>> = None;
    let mut compared = 0usize;
    for threads in [1usize, 2, 8] {
        let mut engine = TauwEngine::new(tauw.clone());
        engine.threads(threads);
        let mut all = Vec::new();
        for j in 0..window_len {
            let mut positions = Vec::new();
            let mut batch = Vec::new();
            for (s, series) in streams.iter().enumerate() {
                if let Some(step) = series.steps.get(j) {
                    positions.push(s);
                    batch.push(StreamStep::new(
                        StreamId(s as u64),
                        step.quality_factors.clone(),
                        step.outcome,
                    ));
                }
            }
            for (&s, out) in positions.iter().zip(engine.step_many(&batch).unwrap()) {
                let qf = &streams[s].steps[j].quality_factors;
                // The forest's flat serving path (K traversals + mean in
                // canonical member order) recomputed via the pointer
                // members, bit for bit.
                let mut features = qf.clone();
                features.extend(tauw.taqf_set().select(&out.taqf));
                let reference = tauw.taqim().uncertainty_reference(&features).unwrap();
                assert_eq!(
                    out.uncertainty.to_bits(),
                    reference.to_bits(),
                    "stream {s} step {j} threads={threads}"
                );
                compared += 1;
                all.push(out);
            }
        }
        match &baseline {
            None => baseline = Some(all),
            Some(expected) => assert_eq!(expected, &all, "threads={threads}"),
        }
    }
    assert!(compared > 300, "covered only {compared} comparisons");
}

#[test]
fn engine_step_many_matches_sequential_single_stream_wrappers() {
    use tauw_suite::core::engine::{StreamId, StreamStep, TauwEngine};

    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    let streams: Vec<_> = convert(&data.test).into_iter().take(32).collect();

    // Reference: one dedicated session per stream, stepped sequentially.
    let mut expected: Vec<Vec<tauw_suite::core::tauw::TauwStep>> = Vec::new();
    for series in &streams {
        let mut session = tauw.new_session();
        session.begin_series();
        expected.push(
            series
                .steps
                .iter()
                .map(|s| session.step(&s.quality_factors, s.outcome).unwrap())
                .collect(),
        );
    }

    // Engine: all streams advance together, one batched call per wave,
    // across several thread budgets.
    for threads in [1usize, 2, 8] {
        let mut engine = TauwEngine::new(tauw.clone());
        engine.threads(threads);
        let window_len = streams.iter().map(|s| s.steps.len()).max().unwrap();
        let mut got: Vec<Vec<tauw_suite::core::tauw::TauwStep>> = vec![Vec::new(); streams.len()];
        for j in 0..window_len {
            let mut positions = Vec::new();
            let mut batch = Vec::new();
            for (s, series) in streams.iter().enumerate() {
                if let Some(step) = series.steps.get(j) {
                    positions.push(s);
                    batch.push(StreamStep::new(
                        StreamId(s as u64),
                        step.quality_factors.clone(),
                        step.outcome,
                    ));
                }
            }
            for (&s, out) in positions.iter().zip(engine.step_many(&batch).unwrap()) {
                got[s].push(out);
            }
        }
        assert_eq!(expected.len(), got.len());
        for (s, (want, have)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(want.len(), have.len(), "stream {s} length");
            for (k, (w, h)) in want.iter().zip(have).enumerate() {
                assert_eq!(
                    w.uncertainty.to_bits(),
                    h.uncertainty.to_bits(),
                    "stream {s} step {k} threads={threads}"
                );
                assert_eq!(w, h, "stream {s} step {k} threads={threads}");
            }
        }
    }
}

#[test]
fn adaptive_engine_matches_sequential_adaptive_sessions_across_thread_budgets() {
    use tauw_suite::core::adaptive::{AdaptiveConfig, DriftSignal};
    use tauw_suite::core::engine::{AdaptiveStreamStep, StreamId, TauwEngine};

    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    // Inject a regime switch: in the second half of every stream, every
    // other step flips to an unmodeled outcome so the wrapper's promised
    // bounds undercover and the adaptive layer has real work to do.
    let streams: Vec<_> = convert(&data.test)
        .into_iter()
        .take(24)
        .map(|mut series| {
            let half = series.steps.len() / 2;
            let truth = series.true_outcome;
            for (j, step) in series.steps.iter_mut().enumerate() {
                if j >= half && j % 2 == 0 {
                    step.outcome = truth + 1;
                }
            }
            series
        })
        .collect();

    let adaptive = AdaptiveConfig {
        window: 8,
        min_observations: 4,
        rate: 0.05,
        max_inflation_steps: 32,
        ..Default::default()
    };

    // Reference: one dedicated adaptive session per stream, sequential.
    let mut expected: Vec<Vec<tauw_suite::core::tauw::TauwStep>> = Vec::new();
    for series in &streams {
        let mut session = tauw.new_adaptive_session(adaptive).unwrap();
        session.begin_series();
        expected.push(
            series
                .steps
                .iter()
                .map(|s| {
                    session
                        .step(
                            &s.quality_factors,
                            s.outcome,
                            s.outcome != series.true_outcome,
                        )
                        .unwrap()
                })
                .collect(),
        );
    }

    // Non-vacuity: the regime switch must actually trigger adaptation.
    let flat: Vec<_> = expected.iter().flatten().collect();
    assert!(
        flat.iter().any(|s| s.adapted_uncertainty > s.uncertainty),
        "regime switch should inflate at least one served bound"
    );
    assert!(
        flat.iter().any(|s| s.drift != DriftSignal::Stable),
        "regime switch should surface at least one drift signal"
    );

    // Engine: all streams advance together in batched waves, across
    // several thread budgets; every step must be bit-identical.
    for threads in [1usize, 2, 8] {
        let mut engine = TauwEngine::new(tauw.clone());
        engine.threads(threads);
        engine.enable_adaptation(adaptive).unwrap();
        let window_len = streams.iter().map(|s| s.steps.len()).max().unwrap();
        let mut got: Vec<Vec<tauw_suite::core::tauw::TauwStep>> = vec![Vec::new(); streams.len()];
        for j in 0..window_len {
            let mut positions = Vec::new();
            let mut batch = Vec::new();
            for (s, series) in streams.iter().enumerate() {
                if let Some(step) = series.steps.get(j) {
                    positions.push(s);
                    batch.push(AdaptiveStreamStep::new(
                        StreamId(s as u64),
                        step.quality_factors.clone(),
                        step.outcome,
                        step.outcome != series.true_outcome,
                    ));
                }
            }
            for (&s, out) in positions
                .iter()
                .zip(engine.step_many_adaptive(&batch).unwrap())
            {
                got[s].push(out);
            }
        }
        assert_eq!(expected.len(), got.len());
        for (s, (want, have)) in expected.iter().zip(&got).enumerate() {
            assert_eq!(want.len(), have.len(), "stream {s} length");
            for (k, (w, h)) in want.iter().zip(have).enumerate() {
                assert_eq!(
                    w.adapted_uncertainty.to_bits(),
                    h.adapted_uncertainty.to_bits(),
                    "stream {s} step {k} threads={threads} adapted bound"
                );
                assert_eq!(
                    w.drift, h.drift,
                    "stream {s} step {k} threads={threads} drift"
                );
                assert_eq!(w, h, "stream {s} step {k} threads={threads}");
            }
        }
    }
}

#[test]
fn warmed_engine_wave_scratch_replays_bit_identically() {
    // The engine reuses per-wave scaffolding (slot pool, grouping order,
    // scratch feature rows) across calls. Replaying the same workload
    // through an already-warmed engine — where every reusable buffer
    // carries values from the previous pass — must reproduce the cold
    // pass bit for bit, for the plain and the adaptive wave path alike.
    use tauw_suite::core::adaptive::AdaptiveConfig;
    use tauw_suite::core::engine::{AdaptiveStreamStep, StreamId, TauwEngine};

    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    let streams: Vec<_> = convert(&data.test).into_iter().take(16).collect();
    let window_len = streams.iter().map(|s| s.steps.len()).max().unwrap();
    let adaptive = AdaptiveConfig {
        window: 8,
        min_observations: 4,
        rate: 0.05,
        ..Default::default()
    };

    let mut engine = TauwEngine::new(tauw.clone());
    engine.threads(2);
    engine.enable_adaptation(adaptive).unwrap();

    let run = |engine: &mut TauwEngine| {
        let mut all = Vec::new();
        for j in 0..window_len {
            let batch: Vec<AdaptiveStreamStep> = streams
                .iter()
                .enumerate()
                .filter_map(|(s, series)| {
                    series.steps.get(j).map(|step| {
                        AdaptiveStreamStep::new(
                            StreamId(s as u64),
                            step.quality_factors.clone(),
                            step.outcome,
                            step.outcome != streams[s].true_outcome,
                        )
                    })
                })
                .collect();
            all.extend(engine.step_many_adaptive(&batch).unwrap());
        }
        all
    };

    let cold = run(&mut engine);
    // Drop all stream state (buffers AND adaptive notches) but keep the
    // engine — and with it the warmed wave scaffolding — alive.
    engine.clear_streams();
    let warm = run(&mut engine);
    assert_eq!(cold.len(), warm.len());
    for (k, (c, w)) in cold.iter().zip(&warm).enumerate() {
        assert_eq!(
            c.uncertainty.to_bits(),
            w.uncertainty.to_bits(),
            "step {k}: warmed wave scratch changed a served bound"
        );
        assert_eq!(c, w, "step {k}");
    }

    // Same replay property for the plain (non-adaptive) wave path.
    use tauw_suite::core::engine::StreamStep;
    let run_plain = |engine: &mut TauwEngine| {
        let mut all = Vec::new();
        for j in 0..window_len {
            let batch: Vec<StreamStep> = streams
                .iter()
                .enumerate()
                .filter_map(|(s, series)| {
                    series.steps.get(j).map(|step| {
                        StreamStep::new(
                            StreamId(s as u64),
                            step.quality_factors.clone(),
                            step.outcome,
                        )
                    })
                })
                .collect();
            all.extend(engine.step_many(&batch).unwrap());
        }
        all
    };
    engine.clear_streams();
    let plain_cold = run_plain(&mut engine);
    engine.clear_streams();
    let plain_warm = run_plain(&mut engine);
    assert_eq!(plain_cold, plain_warm);
}

#[test]
fn dataset_generation_is_order_independent_per_series() {
    // Each series derives its RNG stream from (master seed, series index),
    // so regenerating the same world twice yields identical series even
    // though the generator state is not shared.
    let config = SimConfig::scaled(0.03);
    let a = DatasetBuilder::new(config.clone(), 77).unwrap().build();
    let b = DatasetBuilder::new(config, 77).unwrap().build();
    assert_eq!(a.train.len(), b.train.len());
    for (x, y) in a.train.iter().zip(&b.train).step_by(7) {
        assert_eq!(x, y);
    }
    for (x, y) in a.test.iter().zip(&b.test).step_by(3) {
        assert_eq!(x, y);
    }
}

#[test]
fn sharded_engine_matches_sequential_sessions_across_shard_and_thread_grid() {
    // The sharded serving front end is a pure router: at every shard
    // count x thread budget, the served steps must be bit-identical to N
    // dedicated sequential sessions — and a mid-replay snapshot restored
    // into a *different* shard count must continue the exact same
    // trajectory (the stream hash decides placement, never estimates).
    use tauw_suite::core::engine::StreamId;
    use tauw_suite::core::sharded::ShardedEngine;

    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    let streams: Vec<_> = convert(&data.test).into_iter().take(24).collect();
    let window_len = streams.iter().map(|s| s.steps.len()).max().unwrap();
    // Non-sequential ids so the shard hash actually scatters.
    let id_of = |s: usize| StreamId(s as u64 * 7919 + 3);

    // Reference: one dedicated session per stream, stepped sequentially.
    let mut expected: Vec<Vec<tauw_suite::core::tauw::TauwStep>> = Vec::new();
    for series in &streams {
        let mut session = tauw.new_session();
        session.begin_series();
        expected.push(
            series
                .steps
                .iter()
                .map(|s| session.step(&s.quality_factors, s.outcome).unwrap())
                .collect(),
        );
    }

    for shards in [1usize, 2, 7] {
        for threads in [1usize, 2, 8] {
            let mut engine = ShardedEngine::new(tauw.clone(), shards);
            engine.threads(threads);
            // Snapshot halfway, restore into a different shard count, and
            // finish the replay on the resharded engine.
            let snap_at = window_len / 2;
            let reshard = (shards % 7) + 2; // 1 -> 3, 2 -> 4, 7 -> 2
            let mut resharded = ShardedEngine::new(tauw.clone(), reshard);
            resharded.threads(threads);
            let mut moved = false;
            let mut got: Vec<Vec<tauw_suite::core::tauw::TauwStep>> =
                vec![Vec::new(); streams.len()];
            for j in 0..window_len {
                if j == snap_at {
                    for state in engine.snapshot() {
                        resharded.restore(&state).unwrap();
                    }
                    assert_eq!(resharded.n_streams(), engine.n_streams());
                    moved = true;
                }
                let serving = if moved { &mut resharded } else { &mut engine };
                let mut positions = Vec::new();
                let mut batch = Vec::new();
                for (s, series) in streams.iter().enumerate() {
                    if let Some(step) = series.steps.get(j) {
                        positions.push(s);
                        batch.push((id_of(s), step.quality_factors.as_slice(), step.outcome));
                    }
                }
                for (&s, out) in positions
                    .iter()
                    .zip(serving.step_many_borrowed(&batch).unwrap())
                {
                    got[s].push(out);
                }
            }
            assert!(moved, "snapshot point must lie inside the replay");
            for (s, (want, have)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(want.len(), have.len(), "stream {s} length");
                for (k, (w, h)) in want.iter().zip(have).enumerate() {
                    assert_eq!(
                        w.uncertainty.to_bits(),
                        h.uncertainty.to_bits(),
                        "stream {s} step {k} shards={shards}->{reshard} threads={threads}"
                    );
                    assert_eq!(
                        w, h,
                        "stream {s} step {k} shards={shards} threads={threads}"
                    );
                }
            }
        }
    }
}

#[test]
fn adaptive_sharded_engine_matches_adaptive_sessions_across_the_grid() {
    // Adaptive variant of the grid test: per-stream coverage windows and
    // inflation state ride along through sharding, wave batching, and a
    // mid-replay snapshot/reshard, bit for bit.
    use tauw_suite::core::adaptive::AdaptiveConfig;
    use tauw_suite::core::engine::{AdaptiveStreamStep, StreamId};
    use tauw_suite::core::sharded::ShardedEngine;

    let config = SimConfig::scaled(0.04);
    let data = DatasetBuilder::new(config, 31).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(6).calibration(CalibrationOptions {
        min_samples_per_leaf: 50,
        confidence: 0.99,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    // Regime switch in the second half so adaptation has real work to do
    // when the snapshot moves the streams between shard layouts.
    let streams: Vec<_> = convert(&data.test)
        .into_iter()
        .take(16)
        .map(|mut series| {
            let half = series.steps.len() / 2;
            let truth = series.true_outcome;
            for (j, step) in series.steps.iter_mut().enumerate() {
                if j >= half && j % 2 == 0 {
                    step.outcome = truth + 1;
                }
            }
            series
        })
        .collect();
    let window_len = streams.iter().map(|s| s.steps.len()).max().unwrap();
    let id_of = |s: usize| StreamId(s as u64 * 104_729 + 11);
    let adaptive = AdaptiveConfig {
        window: 8,
        min_observations: 4,
        rate: 0.05,
        max_inflation_steps: 32,
        ..Default::default()
    };

    let mut expected: Vec<Vec<tauw_suite::core::tauw::TauwStep>> = Vec::new();
    for series in &streams {
        let mut session = tauw.new_adaptive_session(adaptive).unwrap();
        session.begin_series();
        expected.push(
            series
                .steps
                .iter()
                .map(|s| {
                    session
                        .step(
                            &s.quality_factors,
                            s.outcome,
                            s.outcome != series.true_outcome,
                        )
                        .unwrap()
                })
                .collect(),
        );
    }
    assert!(
        expected
            .iter()
            .flatten()
            .any(|s| s.adapted_uncertainty > s.uncertainty),
        "regime switch should inflate at least one served bound"
    );

    for shards in [1usize, 2, 7] {
        for threads in [1usize, 2, 8] {
            let mut engine = ShardedEngine::new(tauw.clone(), shards);
            engine.threads(threads);
            engine.enable_adaptation(adaptive).unwrap();
            let snap_at = window_len / 2;
            let reshard = (shards % 7) + 2;
            let mut resharded = ShardedEngine::new(tauw.clone(), reshard);
            resharded.threads(threads);
            resharded.enable_adaptation(adaptive).unwrap();
            let mut moved = false;
            let mut got: Vec<Vec<tauw_suite::core::tauw::TauwStep>> =
                vec![Vec::new(); streams.len()];
            for j in 0..window_len {
                if j == snap_at {
                    for state in engine.snapshot() {
                        resharded.restore(&state).unwrap();
                    }
                    moved = true;
                }
                let serving = if moved { &mut resharded } else { &mut engine };
                let mut positions = Vec::new();
                let mut batch = Vec::new();
                for (s, series) in streams.iter().enumerate() {
                    if let Some(step) = series.steps.get(j) {
                        positions.push(s);
                        batch.push(AdaptiveStreamStep::new(
                            id_of(s),
                            step.quality_factors.clone(),
                            step.outcome,
                            step.outcome != series.true_outcome,
                        ));
                    }
                }
                for (&s, out) in positions
                    .iter()
                    .zip(serving.step_many_adaptive(&batch).unwrap())
                {
                    got[s].push(out);
                }
            }
            assert!(moved);
            for (s, (want, have)) in expected.iter().zip(&got).enumerate() {
                assert_eq!(want.len(), have.len(), "stream {s} length");
                for (k, (w, h)) in want.iter().zip(have).enumerate() {
                    assert_eq!(
                        w.adapted_uncertainty.to_bits(),
                        h.adapted_uncertainty.to_bits(),
                        "stream {s} step {k} shards={shards}->{reshard} threads={threads}"
                    );
                    assert_eq!(
                        w, h,
                        "stream {s} step {k} shards={shards} threads={threads}"
                    );
                }
            }
        }
    }
}
