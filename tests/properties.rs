//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use tauw_suite::core::buffer::TimeseriesBuffer;
use tauw_suite::core::taqf::{TaqfSet, TaqfVector};
use tauw_suite::fusion::majority_vote;
use tauw_suite::fusion::uncertainty::UncertaintyFusion;
use tauw_suite::stats::binomial::{lower_bound, upper_bound, BoundMethod};
use tauw_suite::stats::brier::{brier_score, BrierDecomposition, Grouping};
use tauw_suite::stats::calibration::CalibrationCurve;
use tauw_suite::stats::descriptive::quantile;

fn outcome_seq() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..6, 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- fusion ---

    #[test]
    fn majority_vote_returns_a_member(outcomes in outcome_seq()) {
        let fused = majority_vote(&outcomes).unwrap();
        prop_assert!(outcomes.contains(&fused));
    }

    #[test]
    fn majority_vote_respects_absolute_majority(
        winner in 0u32..6,
        loser in 0u32..6,
        n_win in 3usize..10,
    ) {
        prop_assume!(winner != loser);
        // winner occupies > half the slots, interleaved.
        let mut outcomes = Vec::new();
        for _ in 0..n_win {
            outcomes.push(winner);
        }
        for _ in 0..n_win - 1 {
            outcomes.push(loser);
        }
        prop_assert_eq!(majority_vote(&outcomes), Some(winner));
    }

    #[test]
    fn majority_vote_is_permutation_sensitive_only_for_ties(outcomes in outcome_seq()) {
        // Reversing the sequence can only change the result if there is a
        // tie in counts (tie-break is recency-based).
        let fused = majority_vote(&outcomes).unwrap();
        let mut rev = outcomes.clone();
        rev.reverse();
        let fused_rev = majority_vote(&rev).unwrap();
        let count = |v: &[u32], x: u32| v.iter().filter(|&&o| o == x).count();
        if fused != fused_rev {
            prop_assert_eq!(count(&outcomes, fused), count(&outcomes, fused_rev));
        }
    }

    #[test]
    fn uncertainty_fusion_ordering(u in prop::collection::vec(0.0f64..=1.0, 1..20)) {
        let naive = UncertaintyFusion::Naive.fuse(&u).unwrap();
        let opportune = UncertaintyFusion::Opportune.fuse(&u).unwrap();
        let worst = UncertaintyFusion::WorstCase.fuse(&u).unwrap();
        prop_assert!(naive <= opportune + 1e-15);
        prop_assert!(opportune <= worst + 1e-15);
        for v in [naive, opportune, worst] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn uncertainty_fusion_is_prefix_monotone(u in prop::collection::vec(0.0f64..=1.0, 2..15)) {
        // Adding observations can only decrease naive/opportune and only
        // increase worst-case.
        let shorter = &u[..u.len() - 1];
        prop_assert!(
            UncertaintyFusion::Naive.fuse(&u).unwrap()
                <= UncertaintyFusion::Naive.fuse(shorter).unwrap() + 1e-15
        );
        prop_assert!(
            UncertaintyFusion::Opportune.fuse(&u).unwrap()
                <= UncertaintyFusion::Opportune.fuse(shorter).unwrap() + 1e-15
        );
        prop_assert!(
            UncertaintyFusion::WorstCase.fuse(&u).unwrap() + 1e-15
                >= UncertaintyFusion::WorstCase.fuse(shorter).unwrap()
        );
    }

    // --- taQF ---

    #[test]
    fn taqf_invariants(
        outcomes in outcome_seq(),
        raw_u in prop::collection::vec(0.0f64..=1.0, 30),
    ) {
        let mut buffer = TimeseriesBuffer::new();
        for (i, &o) in outcomes.iter().enumerate() {
            buffer.push(o, raw_u[i]);
        }
        let fused = majority_vote(&outcomes).unwrap();
        let taqf = TaqfVector::compute(&buffer, fused).unwrap();
        let n = outcomes.len() as f64;
        prop_assert!((0.0..=1.0).contains(&taqf.ratio));
        prop_assert_eq!(taqf.length, n);
        prop_assert!(taqf.unique_outcomes >= 1.0);
        prop_assert!(taqf.unique_outcomes <= n);
        prop_assert!(taqf.cumulative_certainty >= -1e-12);
        prop_assert!(taqf.cumulative_certainty <= taqf.ratio * n + 1e-9);
        // The fused outcome has at least one supporter (majority vote
        // returns a member), so ratio > 0.
        prop_assert!(taqf.ratio > 0.0);
    }

    #[test]
    fn taqf_subset_selection_is_consistent(mask in 0u8..16) {
        let kinds: Vec<_> = tauw_suite::core::taqf::TaqfKind::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| *k)
            .collect();
        let set = TaqfSet::from_kinds(&kinds);
        prop_assert_eq!(set.len(), kinds.len());
        let mut buffer = TimeseriesBuffer::new();
        buffer.push(1, 0.25);
        buffer.push(2, 0.5);
        let taqf = TaqfVector::compute(&buffer, 2).unwrap();
        let selected = set.select(&taqf);
        prop_assert_eq!(selected.len(), set.len());
        for (value, kind) in selected.iter().zip(set.kinds()) {
            prop_assert_eq!(*value, taqf.get(kind));
        }
    }

    // --- timeseries buffer: incremental aggregates vs full recompute ---

    #[test]
    fn buffer_incremental_aggregates_match_full_recompute(
        // op < 12 pushes (outcome, uncertainty); op == 12 clears — so
        // arbitrary interleavings of push/evict/clear are covered.
        // Uncertainties straddle [0, 1] to exercise the push clamping.
        ops in prop::collection::vec(
            (0u8..=12, 0u32..5, -0.2f64..=1.2),
            1..100,
        ),
    ) {
        // Bounded (incl. the degenerate capacity-1 window) and unbounded.
        for capacity in [None, Some(1usize), Some(2), Some(5)] {
            let mut buffer = match capacity {
                Some(cap) => TimeseriesBuffer::bounded(cap),
                None => TimeseriesBuffer::new(),
            };
            // Shadow model: a plain Vec of the whole series + a lifetime
            // counter; the window is its suffix.
            let mut model: Vec<(u32, f64)> = Vec::new();
            for &(op, outcome, uncertainty) in &ops {
                if op == 12 {
                    buffer.clear();
                    model.clear();
                } else {
                    buffer.push(outcome, uncertainty);
                    model.push((outcome, uncertainty.clamp(0.0, 1.0)));
                }
                // Window contents and counters match the model.
                let window: Vec<(u32, f64)> = match capacity {
                    Some(cap) => model[model.len().saturating_sub(cap)..].to_vec(),
                    None => model.clone(),
                };
                prop_assert_eq!(buffer.total_steps() as usize, model.len());
                prop_assert_eq!(buffer.len(), window.len());
                let zipped: Vec<(u32, f64)> =
                    buffer.iter().map(|e| (e.outcome, e.uncertainty)).collect();
                prop_assert_eq!(&zipped, &window);

                if window.is_empty() {
                    prop_assert!(buffer.fused_outcome().is_none());
                    prop_assert!(TaqfVector::compute(&buffer, 0).is_none());
                    continue;
                }
                // Incremental fusion == the O(window) majority-vote scan.
                let fused = buffer.fused_outcome().unwrap();
                prop_assert_eq!(Some(fused), buffer.fused_outcome_reference());
                // Incremental taQFs == the O(window) recompute, bit for
                // bit, for the fused outcome and for absent classes alike.
                for probe in [fused, 0, 4, 99] {
                    let fast = TaqfVector::compute(&buffer, probe).unwrap();
                    let slow = TaqfVector::compute_reference(&buffer, probe).unwrap();
                    prop_assert_eq!(fast.ratio.to_bits(), slow.ratio.to_bits());
                    prop_assert_eq!(fast.length.to_bits(), slow.length.to_bits());
                    prop_assert_eq!(
                        fast.unique_outcomes.to_bits(),
                        slow.unique_outcomes.to_bits()
                    );
                    prop_assert_eq!(
                        fast.cumulative_certainty.to_bits(),
                        slow.cumulative_certainty.to_bits()
                    );
                }
                // taQF2 is the lifetime length; taQF1/3/4 are windowed.
                let t = TaqfVector::compute(&buffer, fused).unwrap();
                prop_assert_eq!(t.length, model.len() as f64);
                let agree = window.iter().filter(|(o, _)| *o == fused).count();
                prop_assert_eq!(t.ratio, agree as f64 / window.len() as f64);
            }
        }
    }

    // --- adaptive calibration: incremental coverage vs full recompute ---

    #[test]
    fn adaptive_incremental_coverage_matches_reference_recompute(
        // op < 12 observes (failed?, served bound); op == 12 resets the
        // adaptation — so arbitrary interleavings of observe/evict/reset
        // (including mid-run regime switches, since `failed` is free per
        // op) are covered. Served bounds straddle [0, 1] to exercise the
        // coverage ring's push clamping.
        ops in prop::collection::vec(
            (0u8..=12, prop::bool::ANY, -0.2f64..=1.2),
            1..120,
        ),
        window in 1usize..8,
        rate_millis in 1u32..=1000,
    ) {
        use tauw_suite::core::adaptive::{AdaptiveConfig, AdaptiveState};

        let config = AdaptiveConfig {
            window,
            min_observations: (window / 2).max(1),
            rate: f64::from(rate_millis) / 1000.0,
            ..Default::default()
        };
        // Twin states: one driven by the O(1) incremental aggregates, one
        // by the O(window) reference recompute. They must stay bitwise
        // identical through every interleaving.
        let mut fast = AdaptiveState::new(config).unwrap();
        let mut slow = AdaptiveState::new(config).unwrap();
        for &(op, failed, bound) in &ops {
            if op == 12 {
                fast.reset();
                slow.reset();
            } else {
                fast.observe(bound, failed);
                slow.observe_reference(bound, failed);
            }
            let a = fast.coverage();
            let b = fast.coverage_reference();
            prop_assert_eq!(a.observations, b.observations);
            prop_assert_eq!(a.failures, b.failures);
            prop_assert_eq!(a.promised_failure_units, b.promised_failure_units);
            prop_assert_eq!(slow.coverage(), slow.coverage_reference());
            prop_assert_eq!(fast.inflation_steps(), slow.inflation_steps());
            prop_assert_eq!(
                fast.adapted_bound(0.37).to_bits(),
                slow.adapted_bound(0.37).to_bits()
            );
            prop_assert_eq!(&fast, &slow);
            // The exact-integer coverage invariants hold along the way.
            prop_assert!(a.observations <= window);
            prop_assert!(a.failures <= a.observations);
            prop_assert!(
                a.promised_failure_units
                    <= (a.observations as u128) << 53
            );
            prop_assert!(
                fast.inflation_steps() <= config.max_inflation_steps
            );
        }
    }

    // --- binomial bounds ---

    #[test]
    fn bounds_bracket_the_point_estimate(
        failures in 0u64..200,
        extra in 1u64..500,
        // Bayesian bounds (Jeffreys) are posterior quantiles and can sit
        // below the MLE at low confidence; the bracketing property is only
        // claimed for the high-confidence regime wrappers actually use.
        confidence in 0.9f64..0.9999,
    ) {
        let trials = failures + extra;
        let p_hat = failures as f64 / trials as f64;
        for method in BoundMethod::ALL {
            let up = upper_bound(method, failures, trials, confidence).unwrap();
            let lo = lower_bound(method, failures, trials, confidence).unwrap();
            prop_assert!(up + 1e-12 >= p_hat, "{method}: upper {up} < point {p_hat}");
            prop_assert!(lo <= p_hat + 1e-12, "{method}: lower {lo} > point {p_hat}");
            prop_assert!((0.0..=1.0).contains(&up));
            prop_assert!((0.0..=1.0).contains(&lo));
        }
    }

    #[test]
    fn clopper_pearson_tightens_with_data(
        rate_num in 0u64..10,
        confidence in 0.9f64..0.999,
    ) {
        // Same empirical rate, 10x the data: the bound must shrink.
        let small = upper_bound(BoundMethod::ClopperPearson, rate_num, 100, confidence).unwrap();
        let large =
            upper_bound(BoundMethod::ClopperPearson, rate_num * 10, 1000, confidence).unwrap();
        prop_assert!(large <= small + 1e-12);
    }

    // --- Brier / calibration ---

    #[test]
    fn murphy_identity_on_random_data(
        values in prop::collection::vec((0.0f64..=1.0, prop::bool::ANY), 2..200),
    ) {
        let forecasts: Vec<f64> = values.iter().map(|(f, _)| *f).collect();
        let failures: Vec<bool> = values.iter().map(|(_, y)| *y).collect();
        let d = BrierDecomposition::compute(
            &forecasts,
            &failures,
            Grouping::UniqueValues { tolerance: 0.0 },
        )
        .unwrap();
        prop_assert!(d.within_group_residual.abs() < 1e-9);
        prop_assert!(d.brier >= -1e-12);
        prop_assert!(d.resolution >= -1e-12);
        prop_assert!(d.unreliability >= -1e-12);
        prop_assert!((d.overconfidence + d.underconfidence - d.unreliability).abs() < 1e-12);
        let plain = brier_score(&forecasts, &failures).unwrap();
        prop_assert!((plain - d.brier).abs() < 1e-12);
    }

    #[test]
    fn calibration_curve_partitions_all_cases(
        values in prop::collection::vec((0.0f64..=1.0, prop::bool::ANY), 10..300),
        bins in 1usize..12,
    ) {
        let u: Vec<f64> = values.iter().map(|(f, _)| *f).collect();
        let y: Vec<bool> = values.iter().map(|(_, v)| *v).collect();
        let curve = CalibrationCurve::from_uncertainties(&u, &y, bins).unwrap();
        let total: usize = curve.points.iter().map(|p| p.count).sum();
        prop_assert_eq!(total, values.len());
        prop_assert!(curve.points.len() <= bins.max(1));
        prop_assert!(curve.ece() <= 1.0 + 1e-12);
        prop_assert!(curve.mce() <= 1.0 + 1e-12);
        prop_assert!(curve.ece() <= curve.mce() + 1e-12);
    }

    // --- descriptive ---

    #[test]
    fn quantiles_are_monotone_and_bounded(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = quantile(&xs, lo).unwrap();
        let v_hi = quantile(&xs, hi).unwrap();
        prop_assert!(v_lo <= v_hi);
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v_lo >= min - 1e-9 && v_hi <= max + 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // --- decision trees (heavier cases, fewer iterations) ---

    #[test]
    fn tree_predictions_are_valid_classes(
        rows in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..3),
            20..200,
        ),
        depth in 1usize..6,
    ) {
        use tauw_suite::dtree::{Dataset, TreeBuilder};
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], 3).unwrap();
        for (a, b, label) in &rows {
            ds.push_row(&[*a, *b], *label).unwrap();
        }
        let tree = TreeBuilder::new().max_depth(depth).fit(&ds).unwrap();
        prop_assert!(tree.depth() <= depth);
        for (a, b, _) in rows.iter().take(50) {
            let class = tree.predict(&[*a, *b]).unwrap();
            prop_assert!(class < 3);
            let proba = tree.predict_proba(&[*a, *b]).unwrap();
            let sum: f64 = proba.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
        // Training counts are conserved at every level.
        let root = tree.node(0);
        prop_assert_eq!(root.info.n as usize, rows.len());
    }

    #[test]
    fn tree_predictions_invariant_under_sample_permutation(
        rows in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..3),
            20..150,
        ),
        perm_seed in 0u64..u64::MAX,
        depth in 1usize..6,
    ) {
        use tauw_suite::dtree::{Dataset, TreeBuilder};
        // Deterministic Fisher–Yates shuffle from the generated seed.
        let mut permuted = rows.clone();
        let mut state = perm_seed | 1;
        for i in (1..permuted.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            permuted.swap(i, j);
        }
        let build = |data: &[(f64, f64, u32)]| {
            let mut ds = Dataset::new(vec!["a".into(), "b".into()], 3).unwrap();
            for (a, b, label) in data {
                ds.push_row(&[*a, *b], *label).unwrap();
            }
            TreeBuilder::new().max_depth(depth).fit(&ds).unwrap()
        };
        let original = build(&rows);
        let shuffled = build(&permuted);
        // CART training is a function of the sample *multiset*: split
        // search sorts per feature and class counts are order-free, so the
        // trained trees — and thus all predictions — must coincide exactly.
        prop_assert_eq!(&original, &shuffled);
        for (a, b, _) in rows.iter().take(30) {
            prop_assert_eq!(
                original.predict_proba(&[*a, *b]).unwrap(),
                shuffled.predict_proba(&[*a, *b]).unwrap()
            );
        }
    }

    #[test]
    fn histogram_split_gain_never_beats_exact_gain(
        rows in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0u32..2), 20..200),
        bins in 2usize..64,
        min_leaf in 1usize..8,
    ) {
        use tauw_suite::dtree::splitter::find_best_split;
        use tauw_suite::dtree::{Dataset, SplitCriterion, Splitter};
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], 2).unwrap();
        for (a, b, label) in &rows {
            ds.push_row(&[*a, *b], *label).unwrap();
        }
        let idx: Vec<usize> = (0..rows.len()).collect();
        let counts = ds.class_counts();
        let exact = find_best_split(
            &ds, &idx, &counts, SplitCriterion::Gini, Splitter::Exact, min_leaf,
        );
        let hist = find_best_split(
            &ds, &idx, &counts, SplitCriterion::Gini,
            Splitter::Histogram { bins }, min_leaf,
        );
        // Every histogram threshold induces a sample partition the exact
        // scan also evaluates, so the exact splitter's gain dominates.
        if let Some(h) = hist {
            let e = exact.expect("exact must find a split whenever histogram does");
            prop_assert!(
                e.gain >= h.gain - 1e-9,
                "exact gain {} < histogram gain {}", e.gain, h.gain
            );
        }
    }

    #[test]
    fn every_leaf_respects_min_samples_leaf(
        rows in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0u32..2), 10..200),
        min_leaf in 1usize..20,
        depth in 1usize..8,
    ) {
        use tauw_suite::dtree::{Dataset, NodeKind, TreeBuilder};
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], 2).unwrap();
        for (a, b, label) in &rows {
            ds.push_row(&[*a, *b], *label).unwrap();
        }
        let tree = TreeBuilder::new()
            .max_depth(depth)
            .min_samples_leaf(min_leaf)
            .fit(&ds)
            .unwrap();
        for leaf in tree.leaf_ids() {
            let node = tree.node(leaf);
            // The root may hold fewer samples than `min_samples_leaf` (an
            // unsplit tiny dataset); every leaf *created by a split* must
            // respect the bound.
            if leaf != 0 {
                prop_assert!(
                    node.info.n >= min_leaf as u64,
                    "leaf {leaf} holds {} < min_samples_leaf {min_leaf}", node.info.n
                );
            }
        }
        // And the structural invariant that makes that check meaningful:
        // internal nodes route every sample to exactly one child.
        for id in 0..tree.n_nodes() {
            if let NodeKind::Internal { left, right, .. } = tree.node(id).kind {
                prop_assert_eq!(
                    tree.node(id).info.n,
                    tree.node(left).info.n + tree.node(right).info.n
                );
            }
        }
    }

    #[test]
    fn flat_tree_matches_pointer_tree_on_random_trees(
        // Row counts start at 1 so degenerate trees (a single row, or a
        // pure root) flatten to a single-leaf FlatTree and still agree.
        rows in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..3),
            1..200,
        ),
        queries in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..30),
        depth in 1usize..7,
        min_leaf in 1usize..10,
    ) {
        use tauw_suite::dtree::{Dataset, FlatTree, TreeBuilder};
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], 3).unwrap();
        for (a, b, label) in &rows {
            ds.push_row(&[*a, *b], *label).unwrap();
        }
        let tree = TreeBuilder::new()
            .max_depth(depth)
            .min_samples_leaf(min_leaf)
            .fit(&ds)
            .unwrap();
        let flat = FlatTree::from_tree(&tree);

        // Structure: dense depth-first leaf ids covering exactly the
        // pointer tree's reachable leaves.
        prop_assert_eq!(flat.n_leaves(), tree.n_leaves());
        prop_assert_eq!(
            flat.leaves().iter().map(|l| l.node_id).collect::<Vec<_>>(),
            tree.leaf_ids()
        );

        // Per-query bit-identity: routing, class, probabilities.
        let query_rows: Vec<Vec<f64>> = queries.iter().map(|(a, b)| vec![*a, *b]).collect();
        let mut serial = Vec::new();
        for q in &query_rows {
            let lid = flat.predict_leaf_id(q).unwrap();
            serial.push(lid);
            prop_assert_eq!(flat.leaf(lid).node_id, tree.leaf_id(q).unwrap());
            prop_assert_eq!(flat.predict(q).unwrap(), tree.predict(q).unwrap());
            let fp = flat.predict_proba(q).unwrap();
            let tp = tree.predict_proba(q).unwrap();
            prop_assert_eq!(fp.len(), tp.len());
            for (x, y) in fp.iter().zip(&tp) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        // Batched fan-out: input order, identical for every thread budget.
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                flat.predict_leaf_ids(threads, &query_rows).unwrap(),
                serial.clone()
            );
        }
    }

    #[test]
    fn batch_major_routing_matches_per_sample_routing_bitwise(
        // Row counts start at 1 so degenerate single-leaf trees are
        // covered; the query mask injects NaN features (bit 0 poisons
        // `a`, bit 1 poisons `b`) to exercise the route-right rule along
        // the wave traversal exactly as per-sample routing applies it.
        rows in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..3),
            1..150,
        ),
        queries in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u8..4),
            1..40,
        ),
        depth in 1usize..7,
        k in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        use tauw_suite::dtree::{
            Dataset, FlatForest, FlatTree, ForestBuilder, LeafId, TreeBuilder,
        };
        let mut ds = Dataset::new(vec!["a".into(), "b".into()], 3).unwrap();
        for (a, b, label) in &rows {
            ds.push_row(&[*a, *b], *label).unwrap();
        }
        let flat = FlatTree::from_tree(
            &TreeBuilder::new().max_depth(depth).fit(&ds).unwrap(),
        );
        let mut builder = ForestBuilder::new(k, seed);
        builder.tree(TreeBuilder::new().max_depth(depth).clone());
        let flat_forest = FlatForest::from_forest(&builder.fit(&ds).unwrap());

        let query_rows: Vec<Vec<f64>> = queries
            .iter()
            .map(|(a, b, mask)| {
                vec![
                    if mask & 1 != 0 { f64::NAN } else { *a },
                    if mask & 2 != 0 { f64::NAN } else { *b },
                ]
            })
            .collect();

        // Per-sample references: the pointer-free single-query routines.
        let tree_serial: Vec<LeafId> = query_rows
            .iter()
            .map(|q| flat.predict_leaf_id(q).unwrap())
            .collect();
        let forest_serial: Vec<LeafId> = query_rows
            .iter()
            .flat_map(|q| flat_forest.predict_leaf_ids_per_tree(q).unwrap())
            .collect();

        // The level-synchronous wave kernels on the exact-size slices.
        let mut wave = vec![0 as LeafId; query_rows.len()];
        flat.route_batch_into(&query_rows, &mut wave).unwrap();
        prop_assert_eq!(&wave, &tree_serial);
        let mut forest_wave = vec![0 as LeafId; query_rows.len() * k];
        flat_forest
            .route_batch_into(&query_rows, &mut forest_wave)
            .unwrap();
        prop_assert_eq!(&forest_wave, &forest_serial);

        // Ragged batches (empty / single row / full) through the threaded
        // fan-out, identical for every thread budget, appending after a
        // sentinel that must survive untouched.
        for threads in [1usize, 2, 8] {
            for split in [0usize, 1.min(query_rows.len()), query_rows.len()] {
                let batch = &query_rows[..split];
                let mut out = vec![LeafId::MAX];
                flat.predict_leaf_ids_into(threads, batch, &mut out).unwrap();
                prop_assert_eq!(&out[..1], &[LeafId::MAX][..]);
                prop_assert_eq!(&out[1..], &tree_serial[..split]);
                let mut out = vec![LeafId::MAX];
                flat_forest
                    .predict_leaf_ids_into(threads, batch, &mut out)
                    .unwrap();
                prop_assert_eq!(&out[..1], &[LeafId::MAX][..]);
                prop_assert_eq!(&out[1..], &forest_serial[..split * k]);
            }
        }
    }

    #[test]
    fn forest_qim_degenerates_to_the_single_tree_path_at_k1(
        rows in prop::collection::vec((0.0f64..1.0, prop::bool::ANY), 60..200),
        queries in prop::collection::vec(0.0f64..1.0, 1..20),
        depth in 1usize..5,
    ) {
        use tauw_suite::core::calibration::{
            CalibratedForestQim, CalibratedQim, CalibrationOptions,
        };
        use tauw_suite::dtree::{Dataset, Forest, TreeBuilder};
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for (x, failed) in &rows {
            ds.push_row(&[*x], u32::from(*failed)).unwrap();
        }
        let tree = TreeBuilder::new().max_depth(depth).fit(&ds).unwrap();
        let calib: Vec<(Vec<f64>, bool)> =
            rows.iter().map(|(x, failed)| (vec![*x], *failed)).collect();
        let options = CalibrationOptions {
            min_samples_per_leaf: 20,
            confidence: 0.95,
            ..Default::default()
        };
        let single = CalibratedQim::calibrate(tree.clone(), &calib, options).unwrap();
        let forest = CalibratedForestQim::calibrate(
            Forest::from_trees(vec![tree]).unwrap(),
            &calib,
            options,
        )
        .unwrap();
        // A one-member forest is the single-tree path, bit for bit: the
        // mean of one bound is `bound / 1.0 == bound` exactly.
        prop_assert_eq!(forest.n_trees(), 1);
        for x in &queries {
            let q = [*x];
            prop_assert_eq!(
                forest.uncertainty(&q).unwrap().to_bits(),
                single.uncertainty(&q).unwrap().to_bits()
            );
            prop_assert_eq!(
                forest.uncertainty_reference(&q).unwrap().to_bits(),
                single.uncertainty_reference(&q).unwrap().to_bits()
            );
        }
        prop_assert_eq!(
            forest.min_uncertainty().to_bits(),
            single.min_uncertainty().to_bits()
        );
    }

    #[test]
    fn forest_uncertainty_is_permutation_invariant_in_tree_order(
        rows in prop::collection::vec((0.0f64..1.0, prop::bool::ANY), 60..200),
        queries in prop::collection::vec(0.0f64..1.0, 1..20),
        k in 2usize..6,
        seed in 0u64..u64::MAX,
        perm_seed in 0u64..u64::MAX,
    ) {
        use tauw_suite::core::calibration::{CalibratedForestQim, CalibrationOptions};
        use tauw_suite::dtree::{Dataset, Forest, ForestBuilder, TreeBuilder};
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for (x, failed) in &rows {
            ds.push_row(&[*x], u32::from(*failed)).unwrap();
        }
        let mut builder = ForestBuilder::new(k, seed);
        builder.tree(TreeBuilder::new().max_depth(4).clone());
        let forest = builder.fit(&ds).unwrap();

        // Deterministic Fisher–Yates shuffle of the member order.
        let mut permuted = forest.trees().to_vec();
        let mut state = perm_seed | 1;
        for i in (1..permuted.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            permuted.swap(i, j);
        }

        let calib: Vec<(Vec<f64>, bool)> =
            rows.iter().map(|(x, failed)| (vec![*x], *failed)).collect();
        let options = CalibrationOptions {
            min_samples_per_leaf: 20,
            confidence: 0.95,
            ..Default::default()
        };
        let in_order = CalibratedForestQim::calibrate(
            Forest::from_trees(forest.trees().to_vec()).unwrap(),
            &calib,
            options,
        )
        .unwrap();
        let shuffled = CalibratedForestQim::calibrate(
            Forest::from_trees(permuted).unwrap(),
            &calib,
            options,
        )
        .unwrap();
        // The canonical member order makes the calibrated model — and
        // therefore every served mean, bit for bit — independent of the
        // order the trees were supplied in.
        prop_assert_eq!(&in_order, &shuffled);
        in_order.validate().unwrap();
        for x in &queries {
            let q = [*x];
            let a = in_order.uncertainty(&q).unwrap();
            let b = shuffled.uncertainty(&q).unwrap();
            prop_assert_eq!(a.to_bits(), b.to_bits());
            // Serving path == pointer-member reference recompute.
            prop_assert_eq!(
                a.to_bits(),
                in_order.uncertainty_reference(&q).unwrap().to_bits()
            );
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn backend_seam_batch_per_sample_and_reference_agree_bitwise(
        // The seam contract, checked generically for every registered
        // backend (tree, forest, conformal — bare and TaQim-wrapped): the
        // batch-major `uncertainty_batch_into` wave, the per-sample
        // `uncertainty` path, and the `uncertainty_reference` recompute
        // are bitwise identical, under NaN-injected queries (bit 0 of the
        // mask poisons the feature) and every thread budget.
        rows in prop::collection::vec((0.0f64..1.0, prop::bool::ANY), 60..200),
        queries in prop::collection::vec((0.0f64..1.0, 0u8..2), 1..30),
        depth in 1usize..5,
        k in 1usize..4,
        bins in 2usize..24,
        seed in 0u64..u64::MAX,
    ) {
        use tauw_suite::core::calibration::{
            CalibratedForestQim, CalibratedQim, CalibrationOptions, QimBackend,
            ServingScratch, TaQim,
        };
        use tauw_suite::core::conformal::{ConformalOptions, ConformalQim};
        use tauw_suite::dtree::{Dataset, ForestBuilder, TreeBuilder};

        /// One backend through the whole contract: bounds in [0, 1],
        /// serving == reference bitwise, batch == per-sample bitwise for
        /// threads 1/2/8 (appended after a sentinel that must survive).
        fn exercise<B: QimBackend>(
            backend: &B,
            query_rows: &[Vec<f64>],
        ) -> Result<(), TestCaseError> {
            backend.validate().unwrap();
            let serial: Vec<f64> = query_rows
                .iter()
                .map(|q| backend.uncertainty(q).unwrap())
                .collect();
            for (q, &u) in query_rows.iter().zip(&serial) {
                prop_assert!((0.0..=1.0).contains(&u));
                prop_assert_eq!(
                    u.to_bits(),
                    backend.uncertainty_reference(q).unwrap().to_bits()
                );
            }
            let mut scratch = ServingScratch::new();
            for threads in [1usize, 2, 8] {
                let mut out = vec![f64::NEG_INFINITY];
                backend
                    .uncertainty_batch_into(threads, query_rows, &mut scratch, &mut out)
                    .unwrap();
                prop_assert_eq!(out[0], f64::NEG_INFINITY);
                prop_assert_eq!(out.len(), 1 + query_rows.len());
                for (&got, &want) in out[1..].iter().zip(&serial) {
                    prop_assert_eq!(got.to_bits(), want.to_bits());
                }
            }
            Ok(())
        }

        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for (x, failed) in &rows {
            ds.push_row(&[*x], u32::from(*failed)).unwrap();
        }
        let calib: Vec<(Vec<f64>, bool)> =
            rows.iter().map(|(x, failed)| (vec![*x], *failed)).collect();
        let options = CalibrationOptions {
            min_samples_per_leaf: 20,
            confidence: 0.95,
            ..Default::default()
        };

        let tree = CalibratedQim::calibrate(
            TreeBuilder::new().max_depth(depth).fit(&ds).unwrap(),
            &calib,
            options,
        )
        .unwrap();
        let mut builder = ForestBuilder::new(k, seed);
        builder.tree(TreeBuilder::new().max_depth(depth).clone());
        let forest =
            CalibratedForestQim::calibrate(builder.fit(&ds).unwrap(), &calib, options)
                .unwrap();
        let conformal =
            ConformalQim::calibrate(&calib, &calib, options, ConformalOptions { bins })
                .unwrap();

        let query_rows: Vec<Vec<f64>> = queries
            .iter()
            .map(|(x, mask)| vec![if mask & 1 != 0 { f64::NAN } else { *x }])
            .collect();

        exercise(&tree, &query_rows)?;
        exercise(&forest, &query_rows)?;
        exercise(&conformal, &query_rows)?;
        exercise(&TaQim::Tree(tree), &query_rows)?;
        exercise(&TaQim::Forest(forest), &query_rows)?;
        exercise(&TaQim::Conformal(conformal), &query_rows)?;
    }

    #[test]
    fn tree_routing_agrees_with_decision_path(
        rows in prop::collection::vec((0.0f64..1.0, 0u32..2), 30..120),
        queries in prop::collection::vec(0.0f64..1.0, 1..20),
    ) {
        use tauw_suite::dtree::{Dataset, TreeBuilder};
        let mut ds = Dataset::new(vec!["x".into()], 2).unwrap();
        for (x, label) in &rows {
            ds.push_row(&[*x], *label).unwrap();
        }
        let tree = TreeBuilder::new().max_depth(5).fit(&ds).unwrap();
        for q in queries {
            let leaf = tree.leaf_id(&[q]).unwrap();
            let path = tree.decision_path(&[q]).unwrap();
            prop_assert_eq!(*path.last().unwrap(), leaf);
            prop_assert_eq!(path[0], 0);
        }
    }
}

// --- sharded serving ---

/// One small trained wrapper shared by every sharded proptest case (the
/// property under test is the serving router, not training).
fn sharded_fixture() -> &'static tauw_suite::core::tauw::TimeseriesAwareWrapper {
    use std::sync::OnceLock;
    use tauw_suite::core::calibration::CalibrationOptions;
    use tauw_suite::core::tauw::{TauwBuilder, TimeseriesAwareWrapper};
    use tauw_suite::core::training::{TrainingSeries, TrainingStep};
    use tauw_suite::core::wrapper::WrapperBuilder;
    static FIXTURE: OnceLock<TimeseriesAwareWrapper> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let make_series = |n: usize, seed: u64| -> Vec<TrainingSeries> {
            let mut state = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            (0..n)
                .map(|_| {
                    let q = next();
                    let bias = if next() < 0.5 { 1.3 } else { 0.5 };
                    let steps = (0..10)
                        .map(|_| TrainingStep {
                            quality_factors: vec![q],
                            outcome: if next() < (q * bias).min(0.95) { 3 } else { 7 },
                        })
                        .collect();
                    TrainingSeries {
                        true_outcome: 7,
                        steps,
                    }
                })
                .collect()
        };
        let mut wb = WrapperBuilder::new();
        wb.max_depth(3).calibration(CalibrationOptions {
            min_samples_per_leaf: 50,
            confidence: 0.99,
            ..Default::default()
        });
        let mut builder = TauwBuilder::new();
        builder.wrapper(wb);
        builder
            .fit(vec!["q".into()], &make_series(300, 1), &make_series(300, 2))
            .expect("sharded proptest fixture fits")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_serving_is_bitwise_identical_to_sequential_sessions(
        // Shard counts 1/2/7 x thread budgets 1/2/8, plain and adaptive,
        // with a snapshot -> restore into a different shard count at a
        // random wave mid-replay: the front end must be a pure router,
        // reproducing N dedicated sequential sessions bit for bit.
        n_streams in 1usize..10,
        waves in 1usize..9,
        traffic_seed in 0u64..u64::MAX,
        shard_sel in 0usize..3,
        thread_sel in 0usize..3,
        snap_frac in 0.0f64..1.0,
        adaptive in prop::bool::ANY,
    ) {
        use tauw_suite::core::adaptive::AdaptiveConfig;
        use tauw_suite::core::engine::{AdaptiveStreamStep, StreamId};
        use tauw_suite::core::sharded::ShardedEngine;
        use tauw_suite::core::tauw::TauwStep;

        let shards = [1usize, 2, 7][shard_sel];
        let threads = [1usize, 2, 8][thread_sel];
        let reshard = (shards % 7) + 2; // 1 -> 3, 2 -> 4, 7 -> 2
        let tauw = sharded_fixture();
        let id_of = |s: usize| StreamId((s as u64).wrapping_mul(0x9E37_79B9) + 5);
        let config = AdaptiveConfig {
            window: 4,
            min_observations: 2,
            rate: 0.1,
            max_inflation_steps: 16,
            ..Default::default()
        };

        // Deterministic per-(stream, wave) traffic in the trained domain.
        let step_of = |s: usize, w: usize| -> (f64, u32) {
            let mut state = traffic_seed
                ^ (s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ (w as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let q = next();
            let outcome = if next() < (q * 0.9).min(0.95) { 3 } else { 7 };
            (q, outcome)
        };

        // Reference: one dedicated sequential session per stream.
        let mut expected: Vec<Vec<TauwStep>> = Vec::with_capacity(n_streams);
        for s in 0..n_streams {
            let mut out = Vec::with_capacity(waves);
            if adaptive {
                let mut session = tauw.new_adaptive_session(config).unwrap();
                session.begin_series();
                for w in 0..waves {
                    let (q, outcome) = step_of(s, w);
                    out.push(session.step(&[q], outcome, outcome != 7).unwrap());
                }
            } else {
                let mut session = tauw.new_session();
                session.begin_series();
                for w in 0..waves {
                    let (q, outcome) = step_of(s, w);
                    out.push(session.step(&[q], outcome).unwrap());
                }
            }
            expected.push(out);
        }

        // Sharded: all streams advance together, one wave per timestep,
        // moving to a resharded engine at the snapshot wave.
        let mut engine = ShardedEngine::new(tauw.clone(), shards);
        engine.threads(threads);
        let mut resharded = ShardedEngine::new(tauw.clone(), reshard);
        resharded.threads(threads);
        if adaptive {
            engine.enable_adaptation(config).unwrap();
            resharded.enable_adaptation(config).unwrap();
        }
        let snap_at = ((waves as f64) * snap_frac) as usize;
        let mut moved = false;
        let mut got: Vec<Vec<TauwStep>> = vec![Vec::new(); n_streams];
        for w in 0..waves {
            if w == snap_at {
                for state in engine.snapshot() {
                    prop_assert!(state.validate().is_ok());
                    resharded.restore(&state).unwrap();
                }
                prop_assert_eq!(resharded.n_streams(), engine.n_streams());
                moved = true;
            }
            let serving = if moved { &mut resharded } else { &mut engine };
            let outputs = if adaptive {
                let batch: Vec<AdaptiveStreamStep> = (0..n_streams)
                    .map(|s| {
                        let (q, outcome) = step_of(s, w);
                        AdaptiveStreamStep::new(id_of(s), vec![q], outcome, outcome != 7)
                    })
                    .collect();
                serving.step_many_adaptive(&batch).unwrap()
            } else {
                let features: Vec<[f64; 1]> = (0..n_streams)
                    .map(|s| [step_of(s, w).0])
                    .collect();
                let batch: Vec<(StreamId, &[f64], u32)> = (0..n_streams)
                    .map(|s| (id_of(s), &features[s][..], step_of(s, w).1))
                    .collect();
                serving.step_many_borrowed(&batch).unwrap()
            };
            for (s, out) in outputs.into_iter().enumerate() {
                got[s].push(out);
            }
        }
        prop_assert!(moved, "snapshot wave must lie inside the replay");
        for (s, (want, have)) in expected.iter().zip(&got).enumerate() {
            prop_assert_eq!(want.len(), have.len());
            for (k, (w, h)) in want.iter().zip(have).enumerate() {
                prop_assert!(
                    w.uncertainty.to_bits() == h.uncertainty.to_bits(),
                    "stream {} step {} shards={}->{} threads={} adaptive={}",
                    s, k, shards, reshard, threads, adaptive
                );
                prop_assert_eq!(w, h);
            }
        }
    }
}

// --- scenario families (tauw-sim) ---

mod scenario_families {
    use proptest::prelude::*;
    use tauw_suite::sim::{
        BurstParams, DropoutParams, MultiSourceParams, RegimeParams, ScenarioConfig,
        ScenarioFamily, SimConfig, SplitKind,
    };

    /// Builds one of the four non-baseline families from generic drawn
    /// knobs (the vendored proptest stub has no `prop_oneof`/`prop_map`,
    /// so selection and construction happen in the test body).
    fn make_family(kind: usize, a: f64, b: f64, c: f64, n: usize, flag: bool) -> ScenarioFamily {
        match kind % 4 {
            0 => ScenarioFamily::SensorDropout(DropoutParams {
                gate_prob: a * 0.4,
                stale_prob: b,
                multi_rate_period: n,
                drop_pixel: flag,
                ..Default::default()
            }),
            1 => ScenarioFamily::RegimeSwitch(RegimeParams {
                switch_at: a,
                flip_prob: b,
                within_series_onset: c * 0.9,
            }),
            2 => ScenarioFamily::HeavyTails(BurstParams {
                gate_prob: a * 0.3,
                tail_alpha: 1.1 + b * 1.9,
                scale: c * 0.3,
                ..Default::default()
            }),
            _ => ScenarioFamily::MultiSource(MultiSourceParams {
                n_sources: 2 + n % 3,
                correlation: a,
                disagree_prob: b * 0.5,
                ..Default::default()
            }),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // The determinism wall, extended to scenario generation: the
        // whole scenario-shaped dataset is bitwise identical across
        // thread budgets 1 / 2 / 8.
        #[test]
        fn scenario_build_is_bitwise_deterministic_across_thread_budgets(
            kind in 0usize..4,
            a in 0.0..=1.0f64,
            b in 0.0..=1.0f64,
            c in 0.0..=1.0f64,
            n in 1usize..5,
            flag in proptest::bool::ANY,
            seed in 0u64..1_000,
        ) {
            let family = make_family(kind, a, b, c, n, flag);
            let cfg = ScenarioConfig::new(SimConfig::scaled(0.01), family);
            let one = cfg.build_with_threads(seed, 1).unwrap();
            for threads in [2usize, 8] {
                let other = cfg.build_with_threads(seed, threads).unwrap();
                prop_assert_eq!(&one.train, &other.train);
                prop_assert_eq!(&one.calib, &other.calib);
                prop_assert_eq!(&one.test, &other.test);
            }
        }

        // Transforms key every draw off the series id, never the slice
        // position: applying the family to a reversed split and
        // un-reversing must reproduce the in-order result exactly.
        #[test]
        fn scenario_transform_is_invariant_to_series_order(
            kind in 0usize..4,
            a in 0.0..=1.0f64,
            b in 0.0..=1.0f64,
            c in 0.0..=1.0f64,
            n in 1usize..5,
            flag in proptest::bool::ANY,
            seed in 0u64..1_000,
        ) {
            let family = make_family(kind, a, b, c, n, flag);
            let base = tauw_suite::sim::DatasetBuilder::new(SimConfig::scaled(0.01), seed)
                .unwrap()
                .build();
            let cfg = ScenarioConfig::new(SimConfig::scaled(0.01), family);
            let mut in_order = base.test.clone();
            cfg.apply_split(SplitKind::Test, &mut in_order, seed, 2);
            let mut reversed = base.test.clone();
            reversed.reverse();
            cfg.apply_split(SplitKind::Test, &mut reversed, seed, 2);
            reversed.reverse();
            prop_assert_eq!(in_order, reversed);
        }
    }
}
