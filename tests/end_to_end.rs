//! Cross-crate integration tests: the full pipeline from synthetic world
//! through training, calibration and runtime sessions, checking the
//! *semantic* guarantees the paper relies on.

use tauw_suite::core::calibration::CalibrationOptions;
use tauw_suite::core::tauw::{TauwBuilder, TimeseriesAwareWrapper};
use tauw_suite::core::training::{TrainingSeries, TrainingStep};
use tauw_suite::core::wrapper::WrapperBuilder;
use tauw_suite::fusion::majority_vote;
use tauw_suite::sim::{DatasetBuilder, QualityObservation, SeriesRecord, SimConfig};

fn convert(records: &[SeriesRecord]) -> Vec<TrainingSeries> {
    records
        .iter()
        .map(|r| TrainingSeries {
            true_outcome: u32::from(r.true_class.id()),
            steps: r
                .frames
                .iter()
                .map(|f| TrainingStep {
                    quality_factors: f.observation.feature_vector().to_vec(),
                    outcome: u32::from(f.outcome.id()),
                })
                .collect(),
        })
        .collect()
}

struct World {
    tauw: TimeseriesAwareWrapper,
    test: Vec<TrainingSeries>,
}

fn build_world(seed: u64) -> World {
    build_world_at(seed, 0.1)
}

fn build_world_at(seed: u64, scale: f64) -> World {
    let config = SimConfig::scaled(scale);
    let data = DatasetBuilder::new(config, seed).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(8).calibration(CalibrationOptions {
        min_samples_per_leaf: 100,
        confidence: 0.999,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();
    World {
        tauw,
        test: convert(&data.test),
    }
}

#[test]
fn information_fusion_does_not_hurt_accuracy() {
    let w = build_world(1);
    let mut isolated_wrong = 0usize;
    let mut fused_wrong = 0usize;
    let mut total = 0usize;
    let mut session = w.tauw.new_session();
    for series in &w.test {
        session.begin_series();
        for (j, step) in series.steps.iter().enumerate() {
            let out = session.step(&step.quality_factors, step.outcome).unwrap();
            total += 1;
            isolated_wrong += usize::from(series.is_failure(j));
            fused_wrong += usize::from(out.fused_outcome != series.true_outcome);
        }
    }
    assert!(total > 500, "world too small for a meaningful check");
    assert!(
        fused_wrong <= isolated_wrong,
        "fusion made things worse: {fused_wrong} vs {isolated_wrong} of {total}"
    );
}

#[test]
fn session_fusion_matches_offline_majority_vote() {
    let w = build_world(2);
    let mut session = w.tauw.new_session();
    for series in w.test.iter().take(50) {
        session.begin_series();
        let mut outcomes = Vec::new();
        for step in &series.steps {
            outcomes.push(step.outcome);
            let out = session.step(&step.quality_factors, step.outcome).unwrap();
            // The session must agree with the standalone majority-vote
            // function (most-recent tie-breaking) at every prefix.
            assert_eq!(Some(out.fused_outcome), majority_vote(&outcomes));
        }
    }
}

#[test]
fn dependable_bounds_cover_observed_failure_rates() {
    // The taUW's per-leaf bounds are 99.9%-confidence upper bounds derived
    // from calibration data. On the (exchangeable) test split the observed
    // failure rate among cases predicted at uncertainty <= u must not
    // dramatically exceed u on average — this is the core "dependability"
    // property.
    let w = build_world_at(3, 0.2);
    let mut session = w.tauw.new_session();
    let mut records: Vec<(f64, bool)> = Vec::new();
    for series in &w.test {
        session.begin_series();
        for step in &series.steps {
            let out = session.step(&step.quality_factors, step.outcome).unwrap();
            records.push((out.uncertainty, out.fused_outcome != series.true_outcome));
        }
    }
    // Group by predicted bound; compare observed rate to the bound.
    records.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut i = 0usize;
    let mut violations = 0usize;
    let mut groups = 0usize;
    while i < records.len() {
        let u = records[i].0;
        let mut j = i;
        let mut failures = 0usize;
        while j < records.len() && (records[j].0 - u).abs() < 1e-12 {
            failures += usize::from(records[j].1);
            j += 1;
        }
        let n = j - i;
        if n >= 25 {
            groups += 1;
            let observed = failures as f64 / n as f64;
            // Allow sampling slack: binomial std-dev above the bound.
            let slack = 3.0 * (u.max(0.01) * (1.0 - u.max(0.01)) / n as f64).sqrt();
            if observed > u + slack {
                violations += 1;
            }
        }
        i = j;
    }
    assert!(
        groups >= 2,
        "expected several distinct bound levels, got {groups}"
    );
    assert!(
        violations * 5 <= groups,
        "{violations} of {groups} bound groups violated their guarantee"
    );
}

#[test]
fn tauw_brier_beats_stateless_brier() {
    let w = build_world(4);
    let mut session = w.tauw.new_session();
    let mut stateless = Vec::new();
    let mut tauw_scores = Vec::new();
    for series in &w.test {
        session.begin_series();
        for (j, step) in series.steps.iter().enumerate() {
            let out = session.step(&step.quality_factors, step.outcome).unwrap();
            let isolated_failed = series.is_failure(j);
            let fused_failed = out.fused_outcome != series.true_outcome;
            stateless.push((out.stateless_uncertainty, isolated_failed));
            tauw_scores.push((out.uncertainty, fused_failed));
        }
    }
    let brier = |rows: &[(f64, bool)]| {
        rows.iter()
            .map(|&(u, y)| {
                let o = if y { 1.0 } else { 0.0 };
                (u - o) * (u - o)
            })
            .sum::<f64>()
            / rows.len() as f64
    };
    let b_stateless = brier(&stateless);
    let b_tauw = brier(&tauw_scores);
    assert!(
        b_tauw < b_stateless,
        "taUW ({b_tauw:.4}) must beat the stateless wrapper ({b_stateless:.4})"
    );
}

#[test]
fn buffer_reset_isolates_series() {
    // Running two different series with a reset in between must give the
    // same estimates as running the second series in a fresh session.
    let w = build_world(5);
    let series_a = &w.test[0];
    let series_b = &w.test[1];

    let mut long_session = w.tauw.new_session();
    long_session.begin_series();
    for step in &series_a.steps {
        long_session
            .step(&step.quality_factors, step.outcome)
            .unwrap();
    }
    long_session.begin_series();
    let mut with_reset = Vec::new();
    for step in &series_b.steps {
        with_reset.push(
            long_session
                .step(&step.quality_factors, step.outcome)
                .unwrap(),
        );
    }

    let mut fresh_session = w.tauw.new_session();
    fresh_session.begin_series();
    let mut fresh = Vec::new();
    for step in &series_b.steps {
        fresh.push(
            fresh_session
                .step(&step.quality_factors, step.outcome)
                .unwrap(),
        );
    }
    assert_eq!(with_reset, fresh, "buffer reset must fully isolate series");
}

#[test]
fn qim_trees_are_exportable_and_transparent() {
    let w = build_world(6);
    let tree = w
        .tauw
        .taqim()
        .as_tree()
        .expect("default taQIM is a single tree")
        .tree();
    let text = tauw_suite::dtree::export::to_text(tree);
    assert!(text.contains("leaf"));
    // taQF columns appear in the learned tree's export when they carry
    // signal (the ratio feature practically always does).
    let dot = tauw_suite::dtree::export::to_dot(tree);
    assert!(dot.starts_with("digraph"));
    let json = tauw_suite::dtree::export::to_json(tree);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // Importances are a distribution over features.
    let imp = tauw_suite::dtree::importance::feature_importances(tree);
    let sum: f64 = imp.iter().sum();
    assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
}

#[test]
fn adaptive_session_closes_coverage_gap_under_regime_switch_family() {
    use tauw_suite::core::adaptive::{AdaptiveConfig, DriftSignal};
    use tauw_suite::sim::{RegimeParams, ScenarioConfig, ScenarioFamily, SplitKind};

    // Train and calibrate on the clean world, then serve a test split the
    // regime-switch family has shifted: past the switch position, a
    // fraction of series become systematically confused — every frame
    // reports the same wrong class while the quality sensors read clean.
    let config = SimConfig::scaled(0.1);
    let seed = 20230627;
    let data = DatasetBuilder::new(config.clone(), seed).unwrap().build();
    let mut wb = WrapperBuilder::new();
    wb.max_depth(8).calibration(CalibrationOptions {
        min_samples_per_leaf: 100,
        confidence: 0.999,
        ..Default::default()
    });
    let mut builder = TauwBuilder::new();
    builder.wrapper(wb);
    let tauw = builder
        .fit(
            QualityObservation::feature_names(),
            &convert(&data.train),
            &convert(&data.calib),
        )
        .unwrap();

    let mut shifted_records = data.test.clone();
    let scenario = ScenarioConfig::new(
        config,
        ScenarioFamily::RegimeSwitch(RegimeParams::default()),
    );
    scenario.apply_split(SplitKind::Test, &mut shifted_records, seed, 2);
    let shifted = convert(&shifted_records);
    let switch_at = shifted.len() / 2;

    let total_steps: usize = shifted.iter().map(|s| s.steps.len()).sum();
    let window = (total_steps / 20).clamp(20, 200);
    let adaptive_config = AdaptiveConfig {
        window,
        min_observations: (window / 4).max(1),
        rate: 0.05,
        max_inflation_steps: 200,
        ..Default::default()
    };
    let mut session = tauw.new_adaptive_session(adaptive_config).unwrap();

    let mut frozen_bounds = Vec::with_capacity(total_steps);
    let mut adapted_bounds = Vec::with_capacity(total_steps);
    let mut failures = Vec::with_capacity(total_steps);
    let mut drift = Vec::with_capacity(total_steps);
    let mut post_switch_from = usize::MAX;
    for (i, series) in shifted.iter().enumerate() {
        if i == switch_at {
            post_switch_from = frozen_bounds.len();
        }
        session.begin_series();
        for step in &series.steps {
            let failed = step.outcome != series.true_outcome;
            let out = session
                .step(&step.quality_factors, step.outcome, failed)
                .unwrap();
            frozen_bounds.push(out.uncertainty);
            adapted_bounds.push(out.adapted_uncertainty);
            failures.push(failed);
            drift.push(out.drift != DriftSignal::Stable);
        }
    }

    // Judge coverage on the final quarter, where adaptation has had the
    // whole post-switch stream to converge.
    let q4 = 3 * frozen_bounds.len() / 4;
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
    let failure_rate =
        failures[q4..].iter().filter(|&&f| f).count() as f64 / (failures.len() - q4) as f64;
    let frozen_gap = (failure_rate - mean(&frozen_bounds[q4..])).max(0.0);
    let adaptive_gap = (failure_rate - mean(&adapted_bounds[q4..])).max(0.0);
    assert!(
        frozen_gap > 0.05,
        "frozen bounds should undercover the confused regime by more than \
         5 points (failure rate {failure_rate:.3}, gap {frozen_gap:.3})"
    );
    assert!(
        adaptive_gap <= 0.05,
        "adaptation should close the coverage gap to within 5 points \
         (got {adaptive_gap:.3} vs frozen {frozen_gap:.3})"
    );

    // Drift signals concentrate after the switch.
    let pre = drift[..post_switch_from].iter().filter(|&&d| d).count();
    let post = drift[post_switch_from..].iter().filter(|&&d| d).count();
    assert!(
        post > 2 * pre,
        "drift signals should concentrate post-switch (pre {pre}, post {post})"
    );
}
